"""Hamming-distance utilities over minterm indices.

Minterms of an *n*-input function are integers in ``[0, 2**n)``; input ``j``
is bit ``j`` of the index.  Single-bit input errors (the fault model of the
paper) map a minterm to one of its *n* 1-Hamming-distance neighbours.
"""

from __future__ import annotations

import numpy as np

from .truthtable import DC, OFF, ON, neighbor_view, num_inputs_of

__all__ = [
    "flip_bit",
    "neighbors",
    "hamming_distance",
    "neighbor_phase_counts",
    "same_phase_neighbor_counts",
]


def flip_bit(minterm: int, bit: int) -> int:
    """Return *minterm* with input *bit* complemented."""
    return minterm ^ (1 << bit)


def neighbors(minterm: int, num_inputs: int) -> list[int]:
    """All ``num_inputs`` minterms at Hamming distance 1 from *minterm*."""
    return [minterm ^ (1 << bit) for bit in range(num_inputs)]


def hamming_distance(a: int, b: int) -> int:
    """Number of input positions on which minterms *a* and *b* differ."""
    return (a ^ b).bit_count()


def neighbor_phase_counts(phases: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-minterm counts of on-, off- and DC-phase neighbours.

    For every minterm ``x`` (and every output, for stacked arrays) this
    counts how many of its *n* 1-Hamming-distance neighbours lie in the
    on-set, the off-set and the DC-set of the *same* output.

    Returns:
        ``(on_counts, off_counts, dc_counts)``, each an ``int16`` array with
        the same shape as *phases*.
    """
    n = num_inputs_of(phases)
    on_counts = np.zeros(phases.shape, dtype=np.int16)
    off_counts = np.zeros(phases.shape, dtype=np.int16)
    dc_counts = np.zeros(phases.shape, dtype=np.int16)
    for bit in range(n):
        nb = neighbor_view(phases, bit)
        on_counts += nb == ON
        off_counts += nb == OFF
        dc_counts += nb == DC
    return on_counts, off_counts, dc_counts


def same_phase_neighbor_counts(phases: np.ndarray) -> np.ndarray:
    """Per-minterm count of neighbours sharing the minterm's own phase.

    This is the raw ingredient of the complexity factor: DC neighbours of a
    DC minterm count as "same phase", exactly as in the paper's definition
    (phases are compared as on/off/DC labels).
    """
    n = num_inputs_of(phases)
    counts = np.zeros(phases.shape, dtype=np.int16)
    for bit in range(n):
        counts += neighbor_view(phases, bit) == phases
    return counts
