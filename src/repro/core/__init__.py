"""Core algorithms of the paper: specs, metrics, and DC assignment.

This subpackage is self-contained (numpy only) and holds everything that is
*technology independent*: the function representation, the complexity-factor
metrics, the exact reliability model, the two proposed assignment algorithms
and the Sec. 5 analytic estimators.
"""

from .assignment import Assignment
from .cfactor import DEFAULT_THRESHOLD, THRESHOLD_RANGE, cfactor_assignment
from .complexity import (
    complexity_factor,
    expected_complexity_factor,
    local_complexity,
    local_complexity_factor,
    spec_complexity_factor,
    spec_expected_complexity_factor,
)
from .estimates import (
    EstimateReport,
    border_bounds,
    border_counts,
    estimate_report,
    signal_probability_bounds,
)
from .hamming import flip_bit, hamming_distance, neighbor_phase_counts, neighbors
from .montecarlo import MonteCarloEstimate, estimate_error_rate
from .ranking import complete_assignment, rank_dc_minterms, ranking_assignment
from .reliability import (
    ErrorBounds,
    base_error_count,
    error_events,
    error_rate,
    exact_error_bounds,
    max_dc_error_count,
    min_dc_error_count,
    multibit_error_rate,
    spec_error_rate,
    weighted_error_rate,
)
from .spec import FunctionSpec
from .truthtable import DC, OFF, ON

__all__ = [
    "Assignment",
    "DEFAULT_THRESHOLD",
    "THRESHOLD_RANGE",
    "cfactor_assignment",
    "complexity_factor",
    "expected_complexity_factor",
    "local_complexity",
    "local_complexity_factor",
    "spec_complexity_factor",
    "spec_expected_complexity_factor",
    "EstimateReport",
    "border_bounds",
    "border_counts",
    "estimate_report",
    "signal_probability_bounds",
    "flip_bit",
    "hamming_distance",
    "neighbor_phase_counts",
    "neighbors",
    "MonteCarloEstimate",
    "estimate_error_rate",
    "complete_assignment",
    "rank_dc_minterms",
    "ranking_assignment",
    "ErrorBounds",
    "base_error_count",
    "error_events",
    "error_rate",
    "exact_error_bounds",
    "max_dc_error_count",
    "min_dc_error_count",
    "multibit_error_rate",
    "weighted_error_rate",
    "spec_error_rate",
    "FunctionSpec",
    "DC",
    "OFF",
    "ON",
]
