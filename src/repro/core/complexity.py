"""Complexity-factor metrics (Sec. 2.2 and Sec. 4 of the paper).

The *complexity factor* of Hurst, Miller and Muzio counts 1-Hamming-distance
minterm pairs that share a phase; normalised by the ``n * 2**n`` ordered
neighbour pairs it becomes the probability that a random neighbour of a
random minterm has the same phase.  A normalised complexity factor of 1 is a
constant function; 0 (for a fully specified function) is a parity function.
Despite the name, *high* complexity factor means a *simpler* (smaller-SOP)
function — the paper keeps the historical naming and so do we.

The *local* complexity factor ``LC^f(x)`` restricts the statistic to the
2-ball around ``x``: it averages, over the *n* neighbours ``x_j`` of ``x``,
the fraction of each ``x_j``'s neighbours that share ``x_j``'s phase.  It is
the selection metric of the complexity-factor-based assignment algorithm
(Fig. 7).
"""

from __future__ import annotations

import numpy as np

from .hamming import same_phase_neighbor_counts
from .spec import FunctionSpec
from .truthtable import neighbor_view, num_inputs_of, phase_fractions

__all__ = [
    "complexity_factor",
    "expected_complexity_factor",
    "local_complexity",
    "local_complexity_factor",
    "spec_complexity_factor",
    "spec_expected_complexity_factor",
]


def complexity_factor(phases: np.ndarray) -> np.ndarray:
    """Normalised complexity factor ``C^f`` along the last axis.

    ``C^f = |{(x1, x2) : f(x1) = f(x2), D_H(x1, x2) = 1}| / (n * 2**n)``
    over *ordered* pairs, i.e. the probability that a uniformly random
    neighbour of a uniformly random minterm shares its phase.

    Returns:
        float (1-D input) or per-output float array (2-D input).
    """
    n = num_inputs_of(phases)
    same = same_phase_neighbor_counts(phases)
    total = same.sum(axis=-1, dtype=np.int64)
    value = total / (n * phases.shape[-1])
    return value if value.ndim else float(value)


def expected_complexity_factor(phases: np.ndarray) -> np.ndarray:
    """Expected complexity factor ``E[C^f] = f0**2 + f1**2 + fDC**2``.

    This is the complexity factor a function would have if every minterm's
    phase were drawn independently with the observed signal probabilities —
    the null model against which Table 1 compares real benchmarks.
    """
    f0, f1, fdc = phase_fractions(phases)
    value = f0 * f0 + f1 * f1 + fdc * fdc
    return value if np.ndim(value) else float(value)


def local_complexity(phases: np.ndarray) -> np.ndarray:
    """Per-minterm same-phase-neighbour fraction ``c(x)``.

    ``c(x)`` is the fraction of ``x``'s *n* neighbours sharing ``x``'s
    phase; its average over all minterms is exactly :func:`complexity_factor`.
    """
    n = num_inputs_of(phases)
    return same_phase_neighbor_counts(phases) / n


def local_complexity_factor(phases: np.ndarray) -> np.ndarray:
    """Normalised local complexity factor ``LC^f(x)`` for every minterm.

    Per the paper's definition, ``LC^f(x_i)`` counts pairs ``(x_j, x_k)``
    with ``D_H(x_i, x_j) = 1``, ``D_H(x_j, x_k) = 1`` and
    ``f(x_j) = f(x_k)``, normalised by ``n**2``.  Equivalently it is the
    mean of :func:`local_complexity` over the *n* neighbours of ``x_i``
    (``x_i`` itself participates as a candidate ``x_k``).
    """
    n = num_inputs_of(phases)
    local = local_complexity(phases)
    acc = np.zeros(phases.shape, dtype=np.float64)
    for bit in range(n):
        acc += neighbor_view(local, bit)
    return acc / n


def spec_complexity_factor(spec: FunctionSpec) -> float:
    """Benchmark-level ``C^f``: mean complexity factor over all outputs."""
    return float(np.mean(complexity_factor(spec.phases)))


def spec_expected_complexity_factor(spec: FunctionSpec) -> float:
    """Benchmark-level ``E[C^f]``: mean expected complexity factor."""
    return float(np.mean(expected_complexity_factor(spec.phases)))
