"""Complexity-factor-based DC assignment (Fig. 7 of the paper).

The experiments of Sec. 3.1 show that functions (and, locally,
*neighbourhoods*) with a **low** complexity factor tolerate reliability-driven
assignment with little or even negative area overhead, while high-complexity
(SOP-friendly) regions suffer badly when their DCs are taken away from the
area optimiser.  The complexity-factor-based algorithm therefore assigns
exactly those DC minterms whose *local* complexity factor ``LC^f`` falls
below a threshold, and defers everything else to conventional assignment.

The paper recommends thresholds in ``[0.45, 0.65]``: low values favour
performance, high values favour reliability.  The package default of 0.55
is the midpoint.
"""

from __future__ import annotations

import numpy as np

from .assignment import Assignment
from .complexity import local_complexity_factor
from .hamming import neighbor_phase_counts
from .spec import FunctionSpec
from .truthtable import DC, OFF, ON

__all__ = [
    "DEFAULT_THRESHOLD",
    "THRESHOLD_RANGE",
    "cfactor_assignment",
    "cfactor_selected_minterms",
]

DEFAULT_THRESHOLD: float = 0.55
"""Package-default ``LC^f`` threshold (midpoint of the paper's 0.45-0.65)."""

THRESHOLD_RANGE: tuple[float, float] = (0.45, 0.65)
"""The threshold range the paper recommends."""


def cfactor_selected_minterms(spec: FunctionSpec, output: int, threshold: float) -> np.ndarray:
    """DC minterms of *output* whose local complexity factor is below *threshold*."""
    phases = spec.output_phases(output)
    lcf = local_complexity_factor(phases)
    return np.flatnonzero((phases == DC) & (lcf < threshold))


def cfactor_assignment(
    spec: FunctionSpec,
    threshold: float = DEFAULT_THRESHOLD,
) -> Assignment:
    """Assign DC minterms in low-``LC^f`` neighbourhoods to the majority phase.

    Follows Fig. 7 verbatim: a selected minterm goes to the on-set when it
    has strictly more on- than off-neighbours and to the off-set otherwise
    (ties included); unselected minterms stay DC for conventional synthesis.

    Args:
        spec: the incompletely specified function.
        threshold: ``LC^f`` cut-off; the paper recommends 0.45-0.65.

    Raises:
        ValueError: if *threshold* is outside ``[0, 1]``.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must lie in [0, 1], got {threshold}")
    assignment = Assignment()
    for output in range(spec.num_outputs):
        phases = spec.output_phases(output)
        on_nb, off_nb, _ = neighbor_phase_counts(phases)
        for minterm in cfactor_selected_minterms(spec, output, threshold):
            value = ON if on_nb[minterm] > off_nb[minterm] else OFF
            assignment.set(output, int(minterm), value)
    return assignment
