"""Packed-word simulation primitives: 64 vectors per ``uint64``.

Every boolean *signal* over ``V`` simulation vectors is stored as
``W = ceil(V / 64)`` machine words; vector ``v`` lives at bit ``v % 64``
of word ``v // 64``.  Gate evaluation then becomes a handful of whole-word
bitwise operations instead of ``V`` byte operations — the same packing
trick :mod:`repro.espresso.cube` applies along the *variable* axis, here
applied along the *vector* axis.

Tail masking
------------

When ``V`` is not a multiple of 64 the top ``64 - V % 64`` bits of the
last word are unused.  The module-wide invariant is that those bits are
**always zero** in any array handed to or returned from these functions:
packing pads with zeros, and every kernel that complements a word
(``~x`` sets the tail bits) re-masks its result with :func:`zero_tail`
before returning.  This keeps :func:`popcount`, word-wise equality and
``any``-reductions exact without per-call vector counts.

The conversion helpers (:func:`pack_bool` / :func:`unpack_bool` and the
matrix variants) are built on ``np.packbits(..., bitorder="little")`` so
the bit layout is little-endian within each word.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = [
    "WORD_BITS",
    "ALL_ONES",
    "num_words",
    "tail_mask",
    "zero_tail",
    "pack_bool",
    "unpack_bool",
    "pack_matrix",
    "unpack_matrix",
    "pi_space",
    "popcount",
    "eval_cover",
    "eval_table",
    "pattern_masks",
]

WORD_BITS = 64
"""Simulation vectors per packed word."""

ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
"""A fully set word."""

_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)

_BIT_PATTERNS = tuple(
    np.uint64(sum(1 << v for v in range(WORD_BITS) if (v >> i) & 1))
    for i in range(6)
)
"""Within-word truth table of primary input *i* < 6 (0xAAAA..., 0xCCCC..., ...)."""


def num_words(num_vectors: int) -> int:
    """Packed words needed for *num_vectors* vectors (at least one).

    Raises:
        ValueError: for non-positive vector counts.
    """
    if num_vectors <= 0:
        raise ValueError(f"num_vectors must be positive, got {num_vectors}")
    return (num_vectors + WORD_BITS - 1) // WORD_BITS


def tail_mask(num_vectors: int) -> np.uint64:
    """Mask of the valid bits in the *last* word of a packed signal."""
    rem = num_vectors % WORD_BITS
    return ALL_ONES if rem == 0 else np.uint64((1 << rem) - 1)


def zero_tail(words: np.ndarray, num_vectors: int) -> np.ndarray:
    """Clear the unused tail bits of the last word, in place (and return)."""
    if num_vectors % WORD_BITS:
        words[..., -1] &= tail_mask(num_vectors)
    return words


def pack_bool(values: np.ndarray) -> np.ndarray:
    """Pack a 1-D boolean array into little-endian uint64 words."""
    values = np.ascontiguousarray(values, dtype=bool)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {values.shape}")
    words = num_words(values.size)
    buffer = np.zeros(words * 8, dtype=np.uint8)
    bits = np.packbits(values, bitorder="little")
    buffer[: bits.size] = bits
    return buffer.view(np.uint64)


def unpack_bool(words: np.ndarray, num_vectors: int) -> np.ndarray:
    """Inverse of :func:`pack_bool`: the first *num_vectors* bits as bools."""
    raw = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    return np.unpackbits(raw, count=num_vectors, bitorder="little").astype(bool)


def pack_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(V, n)`` boolean matrix into an ``(n, W)`` word array.

    Column *j* of the input (one signal over ``V`` vectors) becomes row
    *j* of the packed output — the layout every simulator consumes.
    """
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError(f"expected a (vectors, signals) matrix, got {matrix.shape}")
    vectors, signals = matrix.shape
    words = num_words(max(1, vectors))
    buffer = np.zeros((signals, words * 8), dtype=np.uint8)
    if vectors:
        bits = np.packbits(np.ascontiguousarray(matrix.T), axis=1, bitorder="little")
        buffer[:, : bits.shape[1]] = bits
    return buffer.view(np.uint64)


def unpack_matrix(words: np.ndarray, num_vectors: int) -> np.ndarray:
    """Inverse of :func:`pack_matrix` transposed: ``(m, W)`` words to
    an ``(m, V)`` boolean array (row per signal)."""
    raw = np.ascontiguousarray(words, dtype=np.uint64)
    if raw.ndim != 2:
        raise ValueError(f"expected an (m, W) word array, got {raw.shape}")
    return np.unpackbits(
        raw.view(np.uint8), axis=1, count=num_vectors, bitorder="little"
    ).astype(bool)


def _build_pi_space(num_inputs: int) -> np.ndarray:
    size = 1 << num_inputs
    words = num_words(size)
    out = np.empty((num_inputs, words), dtype=np.uint64)
    for i in range(num_inputs):
        if i < 6:
            out[i, :] = _BIT_PATTERNS[i]
        else:
            period = 1 << (i - 6)
            block = np.concatenate(
                [np.zeros(period, np.uint64), np.full(period, ALL_ONES)]
            )
            out[i, :] = np.tile(block, words // (2 * period))
    return zero_tail(out, size)


@functools.lru_cache(maxsize=20)
def _pi_space_cached(num_inputs: int) -> np.ndarray:
    out = _build_pi_space(num_inputs)
    out.setflags(write=False)
    return out


def pi_space(num_inputs: int) -> np.ndarray:
    """The exhaustive primary-input space, packed: ``(n, 2**n / 64)`` words.

    Row *i* is the truth table of input *i* over all ``2**n`` minterms
    (minterm ``m`` has input *i* equal to bit *i* of ``m``), built
    directly in the packed domain: inputs 0-5 are repeating within-word
    patterns, higher inputs alternate all-zero / all-one word blocks.

    The returned array is **read-only**: exhaustive simulation rebuilds
    the same input space on every run, so small widths are cached and
    shared between callers (the kernels never mutate their fanin words).
    Copy before writing.  Widths past 16 inputs are built fresh — the
    cache would otherwise pin megabytes per width.
    """
    if num_inputs <= 0:
        raise ValueError(f"num_inputs must be positive, got {num_inputs}")
    if num_inputs <= 16:
        return _pi_space_cached(num_inputs)
    return _build_pi_space(num_inputs)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across a word array."""
    raw = np.ascontiguousarray(words, dtype=np.uint64)
    return int(_POPCOUNT8[raw.reshape(-1).view(np.uint8)].sum())


def eval_cover(cover, fanin_words, num_vectors: int) -> np.ndarray:
    """OR-of-cubes evaluation of an SOP cover on packed fanin signals.

    Two strategies share the entry point.  Typical covers walk the
    cached literal plan with two reusable buffers — each cube is
    AND-accumulated into a scratch word array, OR-merged into the output
    in place, and complemented fanins are inverted once and shared — so
    the whole node costs one in-place word-wise op per literal plus one
    allocation, not one temporary per op.  Covers with very many
    literals switch to the cached gather plan: fanins, complements and
    an all-ones padding row are stacked into one extended signal matrix,
    all cubes are materialised by a single fancy-index, and two ufunc
    reductions (AND along literals, OR along cubes) finish the job with
    a handful of numpy calls independent of the cube count.  Tail bits
    are only re-masked on the final result, so intermediates may carry
    tail garbage.

    Args:
        cover: an :class:`~repro.espresso.cube.Cover` over ``k`` fanins.
        fanin_words: sequence of ``k`` packed signals (``(W,)`` each).
        num_vectors: valid bit count.

    Returns:
        The packed node value, tail-masked.
    """
    words = num_words(num_vectors)
    plan = cover.literal_plan()
    if not plan:
        return np.zeros(words, dtype=np.uint64)
    k = cover.num_inputs
    if k > 0 and cover.num_literals + len(plan) > 24:
        # Gather strategy: extended matrix [fanins; complements; ones].
        ext = np.empty((2 * k + 1, words), dtype=np.uint64)
        ext[:k] = fanin_words
        np.bitwise_not(ext[:k], out=ext[k : 2 * k])
        ext[2 * k] = ALL_ONES
        terms = np.bitwise_and.reduce(ext[cover.gather_plan()], axis=1)
        out = np.bitwise_or.reduce(terms, axis=0)
        return zero_tail(out, num_vectors)
    # Walk strategy: in-place accumulation through two shared buffers.
    complements: dict[int, np.ndarray] = {}
    scratch = np.empty(words, dtype=np.uint64)
    out: np.ndarray | None = None
    for literals in plan:
        if not literals:
            # Tautology cube: the cover is the constant 1.
            ones = np.full(words, ALL_ONES, dtype=np.uint64)
            return zero_tail(ones, num_vectors)
        term: np.ndarray | None = None  # scratch once >= 2 literals seen
        first: np.ndarray | None = None  # borrowed single-literal view
        for j, positive in literals:
            if positive:
                signal = fanin_words[j]
            else:
                signal = complements.get(j)
                if signal is None:
                    signal = np.bitwise_not(fanin_words[j])
                    complements[j] = signal
            if term is not None:
                np.bitwise_and(term, signal, out=term)
            elif first is None:
                first = signal
            else:
                np.bitwise_and(first, signal, out=scratch)
                term = scratch
        value = term if term is not None else first
        if out is None:
            out = np.array(value)  # own it: scratch is reused next cube
        else:
            np.bitwise_or(out, value, out=out)
    return zero_tail(out, num_vectors)


def eval_table(table: np.ndarray, fanin_words, num_vectors: int) -> np.ndarray:
    """Apply a dense local truth table to packed fanin signals.

    Shannon-reduces the ``2**k`` table one input at a time — ``k`` numpy
    calls total, independent of the cube or minterm count — which makes
    it the preferred kernel for nodes whose dense table is available
    (cell functions, cached SOP tables).

    Args:
        table: boolean array of length ``2**k``; entry *p* is the node
            value under fanin pattern *p* (fanin *j* contributes bit *j*).
        fanin_words: sequence of ``k`` packed signals.
        num_vectors: valid bit count.
    """
    table = np.asarray(table, dtype=bool)
    k = len(fanin_words)
    if table.size != 1 << k:
        raise ValueError(f"table size {table.size} != 2**{k}")
    words = num_words(num_vectors)
    if k == 0:
        out = np.full(words, ALL_ONES if table[0] else np.uint64(0), np.uint64)
        return zero_tail(out, num_vectors)
    # First level: each pair (table[p], table[p + half]) is one of the four
    # single-signal functions 0 / ~s / s / 1 — materialise those once and
    # gather, instead of broadcasting two full constant matrices.
    half = (1 << k) // 2
    signal = fanin_words[k - 1]
    choices = np.empty((4, words), np.uint64)
    choices[0] = 0
    np.bitwise_not(signal, out=choices[1])
    choices[2] = signal
    choices[3] = ALL_ONES
    code = table[:half] + 2 * table[half:]
    arr = choices[code]
    # Remaining levels collapse rows pairwise in place with the three-op
    # mux identity lo ^ ((lo ^ hi) & s) == (lo & ~s) | (hi & s).
    for j in range(k - 2, -1, -1):
        signal = fanin_words[j]
        half //= 2
        lo, hi = arr[:half], arr[half:]
        np.bitwise_xor(lo, hi, out=hi)
        np.bitwise_and(hi, signal, out=hi)
        np.bitwise_xor(lo, hi, out=lo)
        arr = lo
    return zero_tail(arr[0], num_vectors)


def pattern_masks(fanin_words, num_vectors: int) -> np.ndarray:
    """Per-pattern vector masks: ``out[p]`` has bit *v* set iff vector *v*
    drives the fanins to local pattern *p*.

    The packed replacement for the scatter-based pattern histogramming in
    the exhaustive ODC extraction: reachability of pattern *p* is
    ``out[p].any()`` and observability is ``(out[p] & observable).any()``.
    """
    k = len(fanin_words)
    words = num_words(num_vectors)
    masks = np.full((1, words), ALL_ONES, dtype=np.uint64)
    zero_tail(masks, num_vectors)
    for j in range(k - 1, -1, -1):
        signal = fanin_words[j]
        split = np.empty((masks.shape[0] * 2, words), dtype=np.uint64)
        split[0::2] = masks & ~signal
        split[1::2] = masks & signal
        masks = split
    return masks
