"""Incremental fanout-cone re-simulation for node-flip analysis.

The exhaustive ODC extraction and the internal-error-rate metric both ask
the same question for every node of a network: *what do the primary
outputs look like when this node's value is complemented?*  Answering it
by re-walking the full topological order per node costs ``O(N)`` node
evaluations per flip — ``O(N^2)`` for a whole network sweep.

:class:`IncrementalNetworkSim` keeps the packed base values of every
signal and re-evaluates only the flipped node's *fanout cone* (its
transitive readers, in topological order).  Primary outputs outside the
cone are returned by reference to the base arrays, so a flip costs
``O(cone size)`` node evaluations — for typical multi-level networks a
small fraction of ``N``.  The same machinery supports *rewrites*: after a
node's cover changes (the nodal reassignment loop), :meth:`recompute`
refreshes the node and its cone in place instead of re-simulating the
network from scratch.

Cone membership depends only on network structure, so cones are cached
per node; the cache stays valid across cover rewrites (which preserve
fanins) and is rebuilt only when a new simulator is constructed.

Instrumentation: ``sim.cone_nodes`` counts node evaluations performed by
flips and recomputes — the direct measure of how much work cone
restriction saves versus ``flips * N``.
"""

from __future__ import annotations

import numpy as np

from ..obs import metrics as obs_metrics
from . import packed as pk
from .engine import eval_node, network_values

__all__ = ["IncrementalNetworkSim"]


class IncrementalNetworkSim:
    """Packed network values plus cone-restricted flip evaluation.

    Attributes:
        network: the simulated network (structure must not change while
            the simulator is alive; cover rewrites are fine when followed
            by :meth:`recompute`).
        values: packed value words of every signal, kept current.
        num_vectors: simulated vector count (``2**num_pis`` by default).
    """

    def __init__(self, network, pi_words=None, num_vectors=None):
        self.network = network
        self.values = network_values(network, pi_words, num_vectors)
        if pi_words is None:
            num_vectors = 1 << len(network.primary_inputs)
        self.num_vectors: int = num_vectors
        self.num_words: int = pk.num_words(num_vectors)
        order = network.topological_order()
        self._position = {name: index for index, name in enumerate(order)}
        self._fanouts = network.fanouts()
        self._cones: dict[str, tuple[str, ...]] = {}

    @classmethod
    def from_bool_values(cls, network, values: dict[str, np.ndarray]):
        """Adopt pre-computed exhaustive boolean signal tables."""
        sim = cls.__new__(cls)
        sim.network = network
        sim.num_vectors = 1 << len(network.primary_inputs)
        sim.num_words = pk.num_words(sim.num_vectors)
        sim.values = {name: pk.pack_bool(table) for name, table in values.items()}
        order = network.topological_order()
        sim._position = {name: index for index, name in enumerate(order)}
        sim._fanouts = network.fanouts()
        sim._cones = {}
        return sim

    # -------------------------------------------------------------- structure

    def cone(self, name: str) -> tuple[str, ...]:
        """The strict fanout cone of *name*, in topological order."""
        cached = self._cones.get(name)
        if cached is None:
            members: set[str] = set()
            stack = [name]
            while stack:
                current = stack.pop()
                for reader in self._fanouts.get(current, []):
                    if reader not in members:
                        members.add(reader)
                        stack.append(reader)
            cached = tuple(sorted(members, key=self._position.__getitem__))
            self._cones[name] = cached
        return cached

    # -------------------------------------------------------------- queries

    def output_words(self) -> np.ndarray:
        """Stacked packed PO tables (rows alias the base value arrays)."""
        return np.array(
            [self.values[signal] for signal in self.network.outputs.values()]
        )

    def _patched_outputs(self, signal: str, patched_words: np.ndarray) -> np.ndarray:
        """Packed PO tables when *signal*'s value is replaced wholesale.

        The shared cone-re-evaluation kernel behind :meth:`flip_outputs`
        (complement) and :meth:`forced_outputs` (stuck-at constant):
        only the cone of *signal* is re-evaluated; untouched outputs
        share the base arrays, so comparing against
        :meth:`output_words` costs one XOR per word.
        """
        cone = self.cone(signal)
        obs_metrics.counter("sim.cone_nodes").inc(len(cone))
        patched: dict[str, np.ndarray] = {signal: patched_words}
        for name in cone:
            node = self.network.nodes[name]
            fanins = [
                patched.get(fanin, self.values[fanin]) for fanin in node.fanins
            ]
            patched[name] = eval_node(node.cover, fanins, self.num_vectors)
        return np.array(
            [
                patched.get(signal_name, self.values[signal_name])
                for signal_name in self.network.outputs.values()
            ]
        )

    def flip_outputs(self, flip: str) -> np.ndarray:
        """Packed PO tables when signal *flip* is complemented everywhere."""
        return self._patched_outputs(
            flip, pk.zero_tail(~self.values[flip], self.num_vectors)
        )

    def flip_difference(self, flip: str) -> np.ndarray:
        """One word row: bit *v* set iff *some* PO changes under the flip."""
        base = self.output_words()
        flipped = self.flip_outputs(flip)
        return np.bitwise_or.reduce(base ^ flipped, axis=0)

    def forced_outputs(self, name: str, value: bool) -> np.ndarray:
        """Packed PO tables when signal *name* is stuck at *value*.

        The stuck-at counterpart of :meth:`flip_outputs`: the signal is
        forced to the constant on every vector and its fanout cone is
        re-evaluated.  Vectors where the signal already equals *value*
        see unchanged cone inputs, so their outputs match the base
        tables bit for bit — the classical "fault not excited" case
        falls out of the packed evaluation for free.
        """
        base = self.values[name]
        if value:
            forced = pk.zero_tail(
                np.full_like(base, np.iinfo(np.uint64).max), self.num_vectors
            )
        else:
            forced = np.zeros_like(base)
        return self._patched_outputs(name, forced)

    def forced_difference(self, name: str, value: bool) -> np.ndarray:
        """One word row: bit *v* set iff some PO changes under the stuck-at."""
        base = self.output_words()
        forced = self.forced_outputs(name, value)
        return np.bitwise_or.reduce(base ^ forced, axis=0)

    # -------------------------------------------------------------- updates

    def recompute(self, changed: str) -> None:
        """Refresh *changed* (whose cover was rewritten) and its cone."""
        cone = self.cone(changed)
        obs_metrics.counter("sim.cone_nodes").inc(len(cone) + 1)
        for name in (changed, *cone):
            node = self.network.nodes[name]
            self.values[name] = eval_node(
                node.cover,
                [self.values[fanin] for fanin in node.fanins],
                self.num_vectors,
            )
