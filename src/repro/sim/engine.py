"""Packed simulators for every circuit representation.

One shared set of kernels (:mod:`repro.sim.packed`) drives
:class:`~repro.synth.network.LogicNetwork`,
:class:`~repro.synth.netlist.MappedNetlist` and
:class:`~repro.synth.aig.Aig` simulation: signals are uint64 word arrays
(64 vectors per word), node functions are applied by Shannon-reducing the
node's dense local table (narrow nodes) or OR-ing packed cube terms (wide
nodes), and the exhaustive primary-input space is generated directly in
the packed domain.

The module also provides the *evaluator factories* the Monte-Carlo path
consumes (:func:`packed_network_evaluator` and friends): callables
mapping packed input words straight to packed output words, so sampling
never materialises byte-per-vector arrays.

Instrumentation: the ``sim.words`` counter accumulates the number of
packed words produced (one per node per 64 vectors), making relative
simulation volume visible in ``--metrics-out`` dumps alongside the
``espresso.*`` and ``cache.*`` families.
"""

from __future__ import annotations

import numpy as np

from ..obs import metrics as obs_metrics
from . import packed as pk

__all__ = [
    "eval_node",
    "network_values",
    "network_output_words",
    "netlist_values",
    "aig_output_words",
    "packed_network_evaluator",
    "packed_netlist_evaluator",
    "packed_aig_evaluator",
]

_TABLE_WIDTH_LIMIT = 12
"""Never build a dense table beyond this many fanins (a ``2**k`` table
would dwarf the cube list it replaces)."""


def eval_node(cover, fanin_words, num_vectors: int) -> np.ndarray:
    """Apply one SOP node to its packed fanin signals.

    Chooses between the two kernels by estimated cost in word-wise numpy
    operations: the dense-table kernel costs ``~3k`` operations on
    ``2**k``-row intermediates (cheap for narrow or cube-rich nodes), the
    cube kernel one operation per literal and cube (cheap for wide sparse
    SOPs, the shape ESPRESSO leaves behind).  The table estimate carries a
    memory term so ``2**k``-row intermediates that spill out of cache are
    charged for their bandwidth.
    """
    k = cover.num_inputs
    if k <= _TABLE_WIDTH_LIMIT:
        table_cost = 3 * k + 7 + (((1 << k) * pk.num_words(num_vectors)) >> 12)
        cube_cost = cover.num_literals + 2 * cover.num_cubes + 2
        if table_cost <= cube_cost:
            return pk.eval_table(cover.table(), fanin_words, num_vectors)
    return pk.eval_cover(cover, fanin_words, num_vectors)


def _resolve_inputs(names, pi_words, num_vectors):
    """Normalise the (pi_words, num_vectors) pair; default = exhaustive."""
    if pi_words is None:
        num_vectors = 1 << len(names)
        if names:
            pi_words = pk.pi_space(len(names))
        else:  # degenerate constant circuit: one vector, no input rows
            pi_words = np.zeros((0, 1), dtype=np.uint64)
    else:
        pi_words = np.asarray(pi_words, dtype=np.uint64)
        if num_vectors is None:
            raise ValueError("num_vectors is required with explicit pi_words")
        if pi_words.shape != (len(names), pk.num_words(num_vectors)):
            raise ValueError(
                f"expected ({len(names)}, {pk.num_words(num_vectors)}) input words, "
                f"got {pi_words.shape}"
            )
    return pi_words, num_vectors


def network_values(network, pi_words=None, num_vectors=None) -> dict[str, np.ndarray]:
    """Packed value of every signal of a :class:`LogicNetwork`.

    Args:
        network: the network.
        pi_words: packed primary-input signals, shape ``(num_pis, W)``;
            defaults to the exhaustive ``2**n`` input space.
        num_vectors: valid bit count (required with explicit *pi_words*).
    """
    pi_words, num_vectors = _resolve_inputs(
        network.primary_inputs, pi_words, num_vectors
    )
    values: dict[str, np.ndarray] = {
        name: pi_words[position]
        for position, name in enumerate(network.primary_inputs)
    }
    order = network.topological_order()
    for name in order:
        node = network.nodes[name]
        values[name] = eval_node(
            node.cover, [values[fanin] for fanin in node.fanins], num_vectors
        )
    obs_metrics.counter("sim.words").inc(pk.num_words(num_vectors) * len(order))
    return values


def network_output_words(network, values: dict[str, np.ndarray]) -> np.ndarray:
    """Stacked packed PO tables, ordered by output declaration."""
    return np.array([values[signal] for signal in network.outputs.values()])


def netlist_values(netlist, pi_words=None, num_vectors=None) -> dict[str, np.ndarray]:
    """Packed value of every signal of a :class:`MappedNetlist`."""
    pi_words, num_vectors = _resolve_inputs(
        netlist.primary_inputs, pi_words, num_vectors
    )
    words = pk.num_words(num_vectors)
    values: dict[str, np.ndarray] = {
        name: pi_words[position]
        for position, name in enumerate(netlist.primary_inputs)
    }
    for name, constant in netlist.constants.items():
        value = np.full(words, pk.ALL_ONES if constant else np.uint64(0), np.uint64)
        values[name] = pk.zero_tail(value, num_vectors)
    for gate in netlist.gates:
        values[gate.output] = pk.eval_table(
            gate.cell.table, [values[signal] for signal in gate.inputs], num_vectors
        )
    obs_metrics.counter("sim.words").inc(words * len(netlist.gates))
    return values


def aig_output_words(aig, pi_words=None, num_vectors=None) -> dict[str, np.ndarray]:
    """Packed PO tables of an :class:`Aig` (map output name -> words)."""
    pi_words, num_vectors = _resolve_inputs(aig.pi_names, pi_words, num_vectors)
    words = pk.num_words(num_vectors)
    tables: dict[int, np.ndarray] = {0: np.zeros(words, dtype=np.uint64)}
    for position in range(aig.num_pis):
        tables[position + 1] = pi_words[position]

    def lit_words(lit: int) -> np.ndarray:
        value = tables[aig.lit_node(lit)]
        if aig.lit_phase(lit):
            return pk.zero_tail(~value, num_vectors)
        return value

    for node in sorted(aig.fanins):
        a, b = aig.fanins[node]
        tables[node] = lit_words(a) & lit_words(b)
    obs_metrics.counter("sim.words").inc(words * len(aig.fanins))
    return {name: lit_words(lit) for name, lit in aig.outputs.items()}


# ------------------------------------------------------------ MC evaluators


def packed_network_evaluator(network):
    """A packed evaluator (``(n, W)`` words -> ``(outputs, W)`` words) for
    :func:`repro.core.montecarlo.estimate_error_rate`."""

    def evaluate(pi_words: np.ndarray, num_vectors: int) -> np.ndarray:
        values = network_values(network, pi_words, num_vectors)
        return network_output_words(network, values)

    return evaluate


def packed_netlist_evaluator(netlist):
    """Packed Monte-Carlo evaluator for a mapped netlist."""

    def evaluate(pi_words: np.ndarray, num_vectors: int) -> np.ndarray:
        values = netlist_values(netlist, pi_words, num_vectors)
        return np.array([values[signal] for signal in netlist.outputs.values()])

    return evaluate


def packed_aig_evaluator(aig):
    """Packed Monte-Carlo evaluator for an AIG."""

    def evaluate(pi_words: np.ndarray, num_vectors: int) -> np.ndarray:
        tables = aig_output_words(aig, pi_words, num_vectors)
        return np.array(list(tables.values()))

    return evaluate
