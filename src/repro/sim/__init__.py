"""Packed bit-parallel simulation engine.

Signals are uint64 word arrays — 64 simulation vectors per word — and
gate evaluation is whole-word bitwise arithmetic:

* :mod:`repro.sim.packed` — the word-level substrate: pack/unpack,
  tail masking, the exhaustive packed PI space, popcount, and the two
  node kernels (per-cube SOP terms and Shannon-reduced dense tables);
* :mod:`repro.sim.engine` — full-circuit simulators for
  :class:`~repro.synth.network.LogicNetwork`,
  :class:`~repro.synth.netlist.MappedNetlist` and
  :class:`~repro.synth.aig.Aig`, plus packed evaluator factories for
  Monte-Carlo sampling;
* :mod:`repro.sim.incremental` — :class:`IncrementalNetworkSim`,
  cone-restricted flip evaluation and in-place rewrite propagation for
  the ODC/reliability loops.

See ``docs/performance.md`` ("Simulation engine") for the word layout
and the measured speedups, and ``docs/observability.md`` for the
``sim.*`` metrics.
"""

from .engine import (
    aig_output_words,
    eval_node,
    netlist_values,
    network_output_words,
    network_values,
    packed_aig_evaluator,
    packed_netlist_evaluator,
    packed_network_evaluator,
)
from .incremental import IncrementalNetworkSim
from .packed import (
    ALL_ONES,
    WORD_BITS,
    eval_cover,
    eval_table,
    num_words,
    pack_bool,
    pack_matrix,
    pattern_masks,
    pi_space,
    popcount,
    tail_mask,
    unpack_bool,
    unpack_matrix,
    zero_tail,
)

__all__ = [
    "ALL_ONES",
    "IncrementalNetworkSim",
    "WORD_BITS",
    "aig_output_words",
    "eval_cover",
    "eval_node",
    "eval_table",
    "netlist_values",
    "network_output_words",
    "network_values",
    "num_words",
    "pack_bool",
    "pack_matrix",
    "packed_aig_evaluator",
    "packed_netlist_evaluator",
    "packed_network_evaluator",
    "pattern_masks",
    "pi_space",
    "popcount",
    "tail_mask",
    "unpack_bool",
    "unpack_matrix",
    "zero_tail",
]
