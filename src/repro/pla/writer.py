"""Writer for the ``.pla`` format (``.type fd`` semantics).

Specs are written minterm-per-line: one cube for every minterm that is in
the on- or DC-set of at least one output.  This is not the most compact
encoding but it is canonical, loss-free and directly diffable; compactness
is the job of the minimiser, not the interchange format.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.spec import FunctionSpec
from ..core.truthtable import DC, ON

__all__ = ["spec_to_pla", "write_pla"]


def _minterm_string(minterm: int, num_inputs: int) -> str:
    return "".join("1" if (minterm >> j) & 1 else "0" for j in range(num_inputs))


def spec_to_pla(spec: FunctionSpec) -> str:
    """Render *spec* as ``.type fd`` PLA text."""
    interesting = np.flatnonzero(np.any(spec.phases != 0, axis=0))
    lines = [
        f".i {spec.num_inputs}",
        f".o {spec.num_outputs}",
        ".ilb " + " ".join(spec.input_names),
        ".ob " + " ".join(spec.output_names),
        ".type fd",
        f".p {len(interesting)}",
    ]
    for minterm in interesting:
        out_plane = []
        for out in range(spec.num_outputs):
            phase = spec.phases[out, minterm]
            if phase == ON:
                out_plane.append("1")
            elif phase == DC:
                out_plane.append("-")
            else:
                out_plane.append("0")
        lines.append(f"{_minterm_string(int(minterm), spec.num_inputs)} {''.join(out_plane)}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def write_pla(spec: FunctionSpec, path: str | os.PathLike) -> None:
    """Write *spec* to a ``.pla`` file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spec_to_pla(spec))
