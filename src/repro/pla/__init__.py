"""Berkeley PLA (.pla) reading and writing.

The MCNC benchmarks the paper evaluates are distributed in the espresso
``.pla`` format; this package converts between that format and
:class:`~repro.core.spec.FunctionSpec` objects.
"""

from .blif import BlifError, network_to_blif, parse_blif, read_blif, write_blif
from .parser import PlaError, parse_pla, read_pla
from .writer import spec_to_pla, write_pla

__all__ = [
    "BlifError",
    "network_to_blif",
    "parse_blif",
    "read_blif",
    "write_blif",
    "PlaError",
    "parse_pla",
    "read_pla",
    "spec_to_pla",
    "write_pla",
]
