"""BLIF (Berkeley Logic Interchange Format) network I/O.

The PLA format carries two-level specs; multi-level networks travel as
``.blif``.  This module reads and writes the combinational subset —
``.model``, ``.inputs``, ``.outputs`` and ``.names`` (SOP node) blocks —
mapping directly onto :class:`~repro.synth.network.LogicNetwork`.

Single-output-cover convention: each ``.names`` block lists cubes of the
node's on-set when the output column is ``1``; blocks whose output column
is ``0`` describe the off-set and are complemented on input (as SIS/ABC
do).  Latches and subcircuits are not supported (the paper's scope is
combinational).
"""

from __future__ import annotations

import os

import numpy as np

from ..espresso.cube import FREE, Cover
from ..espresso.unate import complement
from ..synth.network import LogicNetwork

__all__ = ["BlifError", "parse_blif", "read_blif", "network_to_blif", "write_blif"]

_CODE_OF = {"0": 0, "1": 1, "-": FREE}
_CHAR_OF = {0: "0", 1: "1", FREE: "-"}


class BlifError(ValueError):
    """Raised on malformed BLIF text."""


def parse_blif(text: str) -> LogicNetwork:
    """Parse BLIF *text* into a :class:`LogicNetwork`.

    Raises:
        BlifError: on syntax errors, missing declarations, or unsupported
            constructs (latches, subcircuits).
    """
    # Join continuation lines and strip comments.
    logical_lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical_lines.append((pending + line).strip())
        pending = ""
    if pending:
        logical_lines.append(pending.strip())

    inputs: list[str] = []
    outputs: list[str] = []
    names_blocks: list[tuple[list[str], list[tuple[str, str]]]] = []
    current: tuple[list[str], list[tuple[str, str]]] | None = None

    for line in logical_lines:
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".model":
                continue
            if keyword == ".inputs":
                inputs.extend(parts[1:])
                current = None
            elif keyword == ".outputs":
                outputs.extend(parts[1:])
                current = None
            elif keyword == ".names":
                if len(parts) < 2:
                    raise BlifError(".names needs at least an output signal")
                current = (parts[1:], [])
                names_blocks.append(current)
            elif keyword == ".end":
                break
            elif keyword in (".latch", ".subckt", ".gate"):
                raise BlifError(f"unsupported construct {keyword}")
            else:
                raise BlifError(f"unsupported directive {keyword}")
            continue
        if current is None:
            raise BlifError(f"cube line outside a .names block: {line!r}")
        fields = line.split()
        if len(fields) == 1:
            # Constant node: single output column, no input plane.
            current[1].append(("", fields[0]))
        elif len(fields) == 2:
            current[1].append((fields[0], fields[1]))
        else:
            raise BlifError(f"malformed cube line {line!r}")

    if not inputs and not names_blocks:
        raise BlifError("missing .inputs / .names declarations")
    network = LogicNetwork(inputs)
    # BLIF allows .names blocks in any order; insert in dependency order.
    pending = list(names_blocks)
    while pending:
        progressed = False
        deferred = []
        for block in pending:
            signals, _ = block
            fanins = signals[:-1]
            defined = set(network.primary_inputs) | set(network.nodes)
            if all(f in defined for f in fanins):
                _add_names_block(network, block)
                progressed = True
            else:
                deferred.append(block)
        if not progressed:
            missing = sorted(
                {f for signals, _ in deferred for f in signals[:-1]}
                - set(network.primary_inputs) - set(network.nodes)
            )
            raise BlifError(f"undefined or cyclic signals: {missing}")
        pending = deferred
    for output in outputs:
        network.set_output(output, output)
    return network


def _add_names_block(
    network: LogicNetwork, block: tuple[list[str], list[tuple[str, str]]]
) -> None:
    signals, cube_lines = block
    *fanins, output = signals
    if output in network.primary_inputs:
        raise BlifError(f".names redefines primary input {output!r}")
    num_fanins = len(fanins)
    on_rows: list[list[int]] = []
    off_rows: list[list[int]] = []
    for in_plane, out_char in cube_lines:
        if len(in_plane) != num_fanins:
            raise BlifError(f"node {output!r}: cube {in_plane!r} has wrong width")
        try:
            row = [_CODE_OF[ch] for ch in in_plane]
        except KeyError as exc:
            raise BlifError(f"bad cube character in {in_plane!r}") from exc
        if out_char == "1":
            on_rows.append(row)
        elif out_char == "0":
            off_rows.append(row)
        else:
            raise BlifError(f"bad output character {out_char!r}")
    if on_rows and off_rows:
        raise BlifError(f"node {output!r}: mixed on- and off-set cubes")
    if num_fanins == 0:
        # Constant node: represent over a dummy fanin.
        if not network.primary_inputs:
            raise BlifError("constant node in a network without inputs")
        anchor = network.primary_inputs[0]
        constant_one = bool(cube_lines) and cube_lines[0][1] == "1"
        cover = Cover.universe(1) if constant_one else Cover.empty(1)
        network.add_node(output, [anchor], cover)
        return
    if off_rows:
        cover = complement(Cover(np.array(off_rows, dtype=np.uint8), num_fanins))
    elif on_rows:
        cover = Cover(np.array(on_rows, dtype=np.uint8), num_fanins)
    else:
        cover = Cover.empty(num_fanins)  # .names with no cubes = constant 0
    network.add_node(output, list(fanins), cover)


def read_blif(path: str | os.PathLike) -> LogicNetwork:
    """Read a ``.blif`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read())


def network_to_blif(network: LogicNetwork, *, model: str = "top") -> str:
    """Render *network* as BLIF text.

    Output signals that are primary inputs or shared node outputs get
    buffer ``.names`` blocks so every declared output has a driver with
    its own name.
    """
    lines = [f".model {model}", ".inputs " + " ".join(network.primary_inputs)]
    lines.append(".outputs " + " ".join(network.outputs))
    emitted_buffers: list[str] = []
    for out_name, signal in network.outputs.items():
        if out_name != signal:
            emitted_buffers.append(f".names {signal} {out_name}\n1 1")
    for name in network.topological_order():
        node = network.nodes[name]
        header = ".names " + " ".join(node.fanins + [name])
        body = [
            "".join(_CHAR_OF[int(v)] for v in row) + " 1" for row in node.cover.cubes
        ]
        lines.append("\n".join([header] + body) if body else header)
    lines.extend(emitted_buffers)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(network: LogicNetwork, path: str | os.PathLike, *, model: str = "top") -> None:
    """Write *network* to a ``.blif`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(network_to_blif(network, model=model))
