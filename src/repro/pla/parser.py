"""Parser for the Berkeley/espresso ``.pla`` format.

Supported directives: ``.i``, ``.o``, ``.ilb``, ``.ob``, ``.p``, ``.type``,
``.e``/``.end``.  Supported logic types (the ``.type`` values espresso
defines for two-level specs):

* ``f``  — cubes list the on-set only; everything else is off.
* ``fd`` — output ``1`` adds to the on-set, ``-`` (or ``2``) to the DC set,
  ``0``/``~`` says nothing (default).  This is espresso's default type and
  the one the paper's benchmarks use.
* ``fr`` — ``1`` adds to the on-set, ``0`` to the off-set; minterms covered
  by neither are don't cares.
* ``fdr`` — all three sets are explicit; uncovered minterms are an error.

Input-plane characters are ``0``, ``1`` and ``-`` (a cube).  Cubes are
expanded into dense phase arrays, so the parser is intended for the
benchmark scale of the paper (functions of up to ~20 inputs).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON

__all__ = ["PlaError", "parse_pla", "read_pla"]

_INPUT_CODES = {"0": 0, "1": 1, "-": 2, "2": 2}
_OUTPUT_CODES = {"0": "0", "1": "1", "-": "-", "2": "-", "~": "~", "4": "1", "3": "0"}


class PlaError(ValueError):
    """Raised on malformed PLA text or inconsistent cube planes."""


def _cube_minterms(cube: list[int], num_inputs: int) -> np.ndarray:
    """Enumerate the minterm indices covered by an input cube."""
    free = [j for j in range(num_inputs) if cube[j] == 2]
    base = 0
    for j in range(num_inputs):
        if cube[j] == 1:
            base |= 1 << j
    if not free:
        return np.array([base], dtype=np.int64)
    combos = np.arange(1 << len(free), dtype=np.int64)
    result = np.full(combos.shape, base, dtype=np.int64)
    for pos, j in enumerate(free):
        result |= ((combos >> pos) & 1) << j
    return result


def parse_pla(text: str, *, name: str = "pla") -> FunctionSpec:
    """Parse PLA *text* into a :class:`FunctionSpec`.

    Raises:
        PlaError: on syntax errors, missing ``.i``/``.o``, plane-length
            mismatches, or on/off conflicts within the cube list.
    """
    num_inputs: int | None = None
    num_outputs: int | None = None
    input_names: tuple[str, ...] = ()
    output_names: tuple[str, ...] = ()
    logic_type = "fd"
    cube_lines: list[tuple[str, str]] = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                num_inputs = int(parts[1])
            elif directive == ".o":
                num_outputs = int(parts[1])
            elif directive == ".ilb":
                input_names = tuple(parts[1:])
            elif directive == ".ob":
                output_names = tuple(parts[1:])
            elif directive == ".type":
                logic_type = parts[1]
                if logic_type not in ("f", "fd", "fr", "fdr"):
                    raise PlaError(f"unsupported .type {logic_type!r}")
            elif directive in (".e", ".end"):
                break
            elif directive == ".p":
                pass  # informational cube count
            else:
                raise PlaError(f"unsupported directive {directive!r}")
            continue
        fields = line.split()
        if len(fields) == 2:
            cube_lines.append((fields[0], fields[1]))
        elif len(fields) == 1 and num_inputs is not None:
            cube_lines.append((fields[0][:num_inputs], fields[0][num_inputs:]))
        else:
            joined = "".join(fields)
            if num_inputs is None:
                raise PlaError("cube line before .i directive")
            cube_lines.append((joined[:num_inputs], joined[num_inputs:]))

    if num_inputs is None or num_outputs is None:
        raise PlaError("missing .i or .o directive")
    if num_inputs > 20:
        raise PlaError(f".i {num_inputs} too large for dense representation")

    size = 1 << num_inputs
    on_hit = np.zeros((num_outputs, size), dtype=bool)
    off_hit = np.zeros((num_outputs, size), dtype=bool)
    dc_hit = np.zeros((num_outputs, size), dtype=bool)

    for in_plane, out_plane in cube_lines:
        if len(in_plane) != num_inputs:
            raise PlaError(f"input plane {in_plane!r} has wrong width")
        if len(out_plane) != num_outputs:
            raise PlaError(f"output plane {out_plane!r} has wrong width")
        try:
            cube = [_INPUT_CODES[ch] for ch in in_plane]
        except KeyError as exc:
            raise PlaError(f"bad input character in {in_plane!r}") from exc
        minterms = _cube_minterms(cube, num_inputs)
        for out, ch in enumerate(out_plane):
            code = _OUTPUT_CODES.get(ch)
            if code is None:
                raise PlaError(f"bad output character {ch!r}")
            if code == "1":
                on_hit[out, minterms] = True
            elif code == "-":
                dc_hit[out, minterms] = True
            elif code == "0" and logic_type in ("fr", "fdr"):
                off_hit[out, minterms] = True
            # '0' under f/fd and '~' carry no information.

    phases = np.full((num_outputs, size), OFF, dtype=np.uint8)
    if logic_type == "f":
        phases[on_hit] = ON
    elif logic_type == "fd":
        phases[dc_hit] = DC
        phases[on_hit] = ON  # on-set wins over DC on overlap, as in espresso
    elif logic_type == "fr":
        phases[:] = DC
        phases[off_hit] = OFF
        phases[on_hit & off_hit] = OFF  # detect below
        if np.any(on_hit & off_hit):
            raise PlaError("minterm in both on- and off-set (.type fr)")
        phases[on_hit] = ON
    else:  # fdr
        conflicts = (on_hit & off_hit) | (on_hit & dc_hit) | (off_hit & dc_hit)
        if np.any(conflicts):
            raise PlaError("overlapping on/off/dc planes (.type fdr)")
        uncovered = ~(on_hit | off_hit | dc_hit)
        if np.any(uncovered):
            raise PlaError("minterm not covered by any plane (.type fdr)")
        phases[dc_hit] = DC
        phases[on_hit] = ON

    return FunctionSpec(
        phases,
        name=name,
        input_names=input_names or (),
        output_names=output_names or (),
    )


def read_pla(path: str | os.PathLike) -> FunctionSpec:
    """Read a ``.pla`` file from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stem = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return parse_pla(text, name=stem)
