"""Reduced ordered BDDs — the reproduction's CUDD stand-in.

The assignment algorithms themselves run on dense truth tables (faster at
benchmark scale), but the BDD manager mirrors how the paper's tool
maintained the on-, off- and DC-sets, and it backs the ODC extraction and
netlist-equivalence checks of :mod:`repro.synth`.
"""

from __future__ import annotations

import numpy as np

from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON
from .manager import BddManager, BddNode

__all__ = ["BddManager", "BddNode", "spec_sets", "spec_from_bdds"]


def spec_sets(manager: BddManager, spec: FunctionSpec, output: int) -> tuple[int, int, int]:
    """Build the (on, off, dc) characteristic-function BDDs of one output.

    The three BDDs are disjoint and their disjunction is the constant 1 —
    the invariant the paper's tool maintains while reassigning DCs.
    """
    if manager.num_vars != spec.num_inputs:
        raise ValueError("manager variable count != spec input count")
    phases = spec.output_phases(output)
    on = manager.from_truth_table(phases == ON)
    off = manager.from_truth_table(phases == OFF)
    dc = manager.from_truth_table(phases == DC)
    return on, off, dc


def spec_from_bdds(
    manager: BddManager,
    on_refs: list[int],
    dc_refs: list[int] | None = None,
    *,
    name: str = "f",
) -> FunctionSpec:
    """Assemble a :class:`FunctionSpec` from per-output on/dc BDDs."""
    if dc_refs is None:
        dc_refs = [manager.zero] * len(on_refs)
    if len(dc_refs) != len(on_refs):
        raise ValueError("on and dc lists must have equal length")
    size = 1 << manager.num_vars
    phases = np.full((len(on_refs), size), OFF, dtype=np.uint8)
    for out, (on_ref, dc_ref) in enumerate(zip(on_refs, dc_refs)):
        on_table = manager.to_truth_table(on_ref)
        dc_table = manager.to_truth_table(dc_ref)
        if bool(np.any(on_table & dc_table)):
            raise ValueError(f"output {out}: on- and DC-set BDDs overlap")
        phases[out, dc_table] = DC
        phases[out, on_table] = ON
    return FunctionSpec(phases, name=name)
