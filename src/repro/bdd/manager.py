"""A reduced ordered BDD (ROBDD) manager.

The paper manipulates on-, off- and DC-sets with the CUDD package; this
module is the reproduction's equivalent substrate.  It implements classic
hash-consed ROBDDs with an ITE-based apply layer:

* nodes are interned in a unique table, so graph equality is pointer
  (index) equality — equivalence checks are ``O(1)`` after construction;
* all Boolean connectives route through :meth:`BddManager.ite` with
  memoisation;
* quantification, restriction, composition, satisfying-assignment counting
  and truth-table conversion live in :mod:`repro.bdd.ops` as methods here.

Variables are identified by their index (0 is closest to the root).  The
manager is deliberately simple — no complement edges, no dynamic
reordering — because the functions in this reproduction are small; the
point is behavioural fidelity, not raw capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = ["BddManager", "BddNode"]


@dataclass(frozen=True)
class BddNode:
    """Internal node record: ``var`` is tested, lo/hi are cofactor refs."""

    var: int
    lo: int
    hi: int


class BddManager:
    """A unique-table / computed-table ROBDD manager.

    Functions are plain integers (node references); ``manager.zero`` and
    ``manager.one`` are the terminals.  All functions returned by one
    manager may be freely combined with each other but not across
    managers.
    """

    def __init__(self, num_vars: int):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.zero: int = 0
        self.one: int = 1
        # Terminals occupy slots 0/1 with a sentinel var beyond every real one.
        self._nodes: list[BddNode] = [
            BddNode(num_vars, 0, 0),
            BddNode(num_vars, 1, 1),
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        # Aggregated across managers; the handles are fetched once here so
        # the interning hot path pays one attribute access per new node.
        self._obs_nodes = obs_metrics.counter("bdd.nodes_created")
        self._obs_ite = obs_metrics.counter("bdd.ite_calls")
        obs_metrics.counter("bdd.managers_created").inc()

    # ------------------------------------------------------------- structure

    def node(self, ref: int) -> BddNode:
        """The node record behind reference *ref*."""
        return self._nodes[ref]

    def var_of(self, ref: int) -> int:
        """Top variable index of *ref* (``num_vars`` for terminals)."""
        return self._nodes[ref].var

    def is_terminal(self, ref: int) -> bool:
        """True for the constant functions."""
        return ref < 2

    @property
    def num_nodes(self) -> int:
        """Total nodes ever interned (including both terminals)."""
        return len(self._nodes)

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        ref = self._unique.get(key)
        if ref is None:
            ref = len(self._nodes)
            self._nodes.append(BddNode(var, lo, hi))
            self._unique[key] = ref
            self._obs_nodes.inc()
        return ref

    # ------------------------------------------------------------ base funcs

    def var(self, index: int) -> int:
        """The projection function of variable *index*."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self._mk(index, self.zero, self.one)

    def nvar(self, index: int) -> int:
        """The complemented projection function of variable *index*."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self._mk(index, self.one, self.zero)

    def constant(self, value: bool) -> int:
        """The constant function."""
        return self.one if value else self.zero

    # ------------------------------------------------------------------- ite

    def _ite_terminal(self, f: int, g: int, h: int) -> int | None:
        """Terminal-case simplifications of ``ite``; None when none apply."""
        if f == self.one:
            return g
        if f == self.zero:
            return h
        if g == h:
            return g
        if g == self.one and h == self.zero:
            return f
        return None

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h`` — the universal connective.

        Implemented with an explicit work stack and the flat ``(f, g, h)``
        computed table, so deep BDDs (variable counts far beyond Python's
        recursion limit) are handled without recursion.
        """
        self._obs_ite.inc()
        terminal = self._ite_terminal(f, g, h)
        if terminal is not None:
            return terminal
        cache = self._ite_cache
        nodes = self._nodes
        _EXPAND, _COMBINE = 0, 1
        tasks: list[tuple[int, tuple]] = [(_EXPAND, (f, g, h))]
        results: list[int] = []
        while tasks:
            op, payload = tasks.pop()
            if op == _EXPAND:
                f, g, h = payload
                terminal = self._ite_terminal(f, g, h)
                if terminal is not None:
                    results.append(terminal)
                    continue
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    results.append(cached)
                    continue
                top = min(nodes[f].var, nodes[g].var, nodes[h].var)
                f0, f1 = self._cofactors(f, top)
                g0, g1 = self._cofactors(g, top)
                h0, h1 = self._cofactors(h, top)
                # Post-order: combine fires after both cofactor subproblems
                # (pushed above it) have appended their results.
                tasks.append((_COMBINE, (key, top)))
                tasks.append((_EXPAND, (f1, g1, h1)))
                tasks.append((_EXPAND, (f0, g0, h0)))
            else:
                key, top = payload
                hi = results.pop()
                lo = results.pop()
                result = self._mk(top, lo, hi)
                cache[key] = result
                results.append(result)
        assert len(results) == 1
        return results[0]

    def _cofactors(self, ref: int, var: int) -> tuple[int, int]:
        node = self._nodes[ref]
        if node.var != var:
            return ref, ref
        return node.lo, node.hi

    # ------------------------------------------------------------ connectives

    def apply_not(self, f: int) -> int:
        """Complement."""
        return self.ite(f, self.zero, self.one)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, self.zero)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, self.one, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence."""
        return self.ite(f, g, self.apply_not(g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, self.one)

    def conjoin(self, refs) -> int:
        """AND of an iterable of functions (1 for an empty iterable)."""
        result = self.one
        for ref in refs:
            result = self.apply_and(result, ref)
        return result

    def disjoin(self, refs) -> int:
        """OR of an iterable of functions (0 for an empty iterable)."""
        result = self.zero
        for ref in refs:
            result = self.apply_or(result, ref)
        return result

    # ----------------------------------------------------------- restriction

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of *f* with variable *var* fixed to *value*."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable {var} out of range")
        nodes = self._nodes
        cache: dict[int, int] = {}

        def resolve(ref: int) -> int | None:
            """Shortcut value of *ref*, or None when children are needed."""
            node = nodes[ref]
            if node.var > var:
                return ref
            if node.var == var:
                return node.hi if value else node.lo
            return cache.get(ref)

        top = resolve(f)
        if top is not None:
            return top
        stack = [f]
        while stack:
            ref = stack[-1]
            if ref in cache:
                stack.pop()
                continue
            node = nodes[ref]
            pending = False
            children = []
            for child in (node.lo, node.hi):
                resolved = resolve(child)
                if resolved is None:
                    stack.append(child)
                    pending = True
                else:
                    children.append(resolved)
            if pending:
                continue
            cache[ref] = self._mk(node.var, children[0], children[1])
            stack.pop()
        return cache[f]

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function *g* for variable *var* inside *f*."""
        hi = self.restrict(f, var, True)
        lo = self.restrict(f, var, False)
        return self.ite(g, hi, lo)

    def exists(self, f: int, variables) -> int:
        """Existential quantification over *variables*."""
        result = f
        for var in variables:
            result = self.apply_or(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    def forall(self, f: int, variables) -> int:
        """Universal quantification over *variables*."""
        result = f
        for var in variables:
            result = self.apply_and(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    # ------------------------------------------------------------ evaluation

    def evaluate(self, f: int, assignment) -> bool:
        """Evaluate *f* under a full variable assignment (indexable by var)."""
        ref = f
        while not self.is_terminal(ref):
            node = self._nodes[ref]
            ref = node.hi if assignment[node.var] else node.lo
        return ref == self.one

    def sat_count(self, f: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables.

        Iterative post-order walk, so counts stay exact (Python bigints)
        and deep BDDs cannot hit the recursion limit.
        """
        cache: dict[int, int] = {self.zero: 0, self.one: 1 << self.num_vars}
        nodes = self._nodes
        stack = [f]
        while stack:
            ref = stack[-1]
            if ref in cache:
                stack.pop()
                continue
            node = nodes[ref]
            missing = [child for child in (node.lo, node.hi) if child not in cache]
            if missing:
                stack.extend(missing)
                continue
            cache[ref] = (cache[node.lo] + cache[node.hi]) // 2
            stack.pop()
        return cache[f]

    def support(self, f: int) -> set[int]:
        """The set of variables *f* structurally depends on."""
        seen: set[int] = set()
        variables: set[int] = set()
        stack = [f]
        while stack:
            ref = stack.pop()
            if ref in seen or self.is_terminal(ref):
                continue
            seen.add(ref)
            node = self._nodes[ref]
            variables.add(node.var)
            stack.append(node.lo)
            stack.append(node.hi)
        return variables

    def size(self, f: int) -> int:
        """Number of distinct internal nodes reachable from *f*."""
        seen: set[int] = set()
        stack = [f]
        count = 0
        while stack:
            ref = stack.pop()
            if ref in seen or self.is_terminal(ref):
                continue
            seen.add(ref)
            count += 1
            node = self._nodes[ref]
            stack.append(node.lo)
            stack.append(node.hi)
        return count

    # ----------------------------------------------------------- truth table

    def from_truth_table(self, values: np.ndarray) -> int:
        """Build the BDD of a dense truth table.

        ``values[x]`` is the function value at minterm ``x`` where bit ``j``
        of ``x`` is variable ``j``.  The table length must be
        ``2**num_vars``.  To keep minterm-index conventions aligned with
        :mod:`repro.core.truthtable`, variable 0 (bit 0) is the *last* level
        of the order.
        """
        values = np.asarray(values, dtype=bool)
        if values.shape != (1 << self.num_vars,):
            raise ValueError(
                f"expected table of length {1 << self.num_vars}, got {values.shape}"
            )

        def build(var: int, table: np.ndarray) -> int:
            if var == self.num_vars:
                return self.one if table[0] else self.zero
            # Variable `var` is bit `num_vars - 1 - level`; recurse on the
            # highest remaining bit so that var order matches index order.
            bit = table.shape[0] >> 1
            lo = build(var + 1, table[:bit])
            hi = build(var + 1, table[bit:])
            return self._mk(var, lo, hi)

        # Reorder: we want variable j to test bit j, with var 0 at the root.
        # Build over bit-reversed table so root splits on bit 0.
        n = self.num_vars
        idx = np.arange(1 << n)
        reversed_idx = np.zeros_like(idx)
        for j in range(n):
            reversed_idx |= (((idx >> j) & 1) << (n - 1 - j))
        return build(0, values[reversed_idx])

    def to_truth_table(self, f: int) -> np.ndarray:
        """Dense boolean truth table of *f* (inverse of from_truth_table)."""
        n = self.num_vars
        cache: dict[int, np.ndarray] = {}

        def walk(ref: int, var: int) -> np.ndarray:
            """Table over variables var..n-1 (length 2**(n - var))."""
            width = 1 << (n - var)
            if ref == self.zero:
                return np.zeros(width, dtype=bool)
            if ref == self.one:
                return np.ones(width, dtype=bool)
            node = self._nodes[ref]
            if node.var > var:
                half = walk(ref, var + 1)
                return np.concatenate([half, half])
            key = ref
            cached = cache.get(key)
            if cached is None:
                lo = walk(node.lo, var + 1)
                hi = walk(node.hi, var + 1)
                cached = np.concatenate([lo, hi])
                cache[key] = cached
            return cached

        # walk() produces tables indexed var0-as-MSB; flip to bit order.
        table = walk(f, 0)
        idx = np.arange(1 << n)
        reversed_idx = np.zeros_like(idx)
        for j in range(n):
            reversed_idx |= (((idx >> j) & 1) << (n - 1 - j))
        return table[reversed_idx]
