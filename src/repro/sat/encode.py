"""Tseitin CNF encodings of networks and AIGs, and miter equivalence.

Together with :mod:`repro.sat.solver` this is the satisfiability half of
the simulation+SAT flexibility machinery the paper cites ([16]): circuits
are encoded clause-by-clause, and equivalence is decided by asking whether
any input makes two implementations differ (the classic miter query).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..espresso.cube import FREE, Cover
from .solver import SatSolver

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..synth.aig import Aig
    from ..synth.network import LogicNetwork

__all__ = ["CnfBuilder", "encode_network", "encode_aig", "networks_equivalent"]


class CnfBuilder:
    """Incrementally builds a CNF over named signals."""

    def __init__(self) -> None:
        self.solver = SatSolver()
        self.variable_of: dict[str, int] = {}

    def var(self, name: str) -> int:
        """The CNF variable of signal *name* (allocated on first use)."""
        existing = self.variable_of.get(name)
        if existing is not None:
            return existing
        variable = self.solver.new_var()
        self.variable_of[name] = variable
        return variable

    def add_clause(self, literals) -> None:
        """Forward to the underlying solver."""
        self.solver.add_clause(literals)

    def constrain_constant(self, name: str, value: bool) -> None:
        """Force a signal to a constant."""
        variable = self.var(name)
        self.add_clause([variable if value else -variable])

    def encode_sop(self, output: str, fanins: list[str], cover: Cover) -> None:
        """Tseitin-encode ``output = cover(fanins)``.

        Each cube gets an auxiliary variable ``t``: ``t <-> AND(literals)``;
        the output is the OR of the cube variables.  Constant covers
        constrain the output directly.
        """
        out_var = self.var(output)
        if cover.num_cubes == 0:
            self.add_clause([-out_var])
            return
        cube_vars = []
        for row in cover.cubes:
            literals = [
                self.var(fanins[j]) if row[j] == 1 else -self.var(fanins[j])
                for j in range(cover.num_inputs)
                if row[j] != FREE
            ]
            if not literals:  # universe cube: output is constant 1
                self.add_clause([out_var])
                return
            cube_var = self.solver.new_var()
            for literal in literals:
                self.add_clause([-cube_var, literal])
            self.add_clause([cube_var] + [-l for l in literals])
            cube_vars.append(cube_var)
        for cube_var in cube_vars:
            self.add_clause([-cube_var, out_var])
        self.add_clause([-out_var] + cube_vars)

    def encode_xor(self, out: int, a: int, b: int) -> None:
        """``out <-> a XOR b`` over raw CNF variables."""
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])

    def encode_or(self, out: int, literals) -> None:
        """``out <-> OR(literals)`` over raw CNF variables.

        With no literals the output is constrained to false.
        """
        literals = [int(l) for l in literals]
        for literal in literals:
            self.add_clause([-literal, out])
        self.add_clause([-out, *literals])

    def encode_cube_guard(self, literals) -> int:
        """A fresh guard ``g`` with ``g -> AND(literals)``.

        One-directional on purpose: the guard is only ever *assumed*
        true, so the reverse implication would add clauses without
        pruning anything.
        """
        guard = self.solver.new_var()
        for literal in literals:
            self.add_clause([-guard, int(literal)])
        return guard

    def encode_selector(self, guards) -> int:
        """A fresh selector ``s`` with ``s -> OR(guards)``.

        Assuming ``s`` forces at least one guard (hence one guarded cube)
        true — the one-hot batching construction: a single ``solve([s])``
        asks "is *any* of these candidate cubes reachable?".  Stale
        selectors are simply never assumed again; their clauses stay
        behind as satisfiable-by-default garbage.
        """
        guards = [int(g) for g in guards]
        if not guards:
            raise ValueError("selector over no guards")
        selector = self.solver.new_var()
        self.add_clause([-selector, *guards])
        return selector


def encode_network(builder: CnfBuilder, network: LogicNetwork, prefix: str = "") -> None:
    """Encode every node of *network*; signal ``s`` maps to ``prefix+s``.

    Primary inputs are encoded *without* the prefix so two prefixed
    networks automatically share their inputs (the miter construction).
    """
    def name_of(signal: str) -> str:
        return signal if signal in network.primary_inputs else prefix + signal

    for node_name in network.topological_order():
        node = network.nodes[node_name]
        builder.encode_sop(
            name_of(node_name), [name_of(f) for f in node.fanins], node.cover
        )


def encode_aig(builder: CnfBuilder, aig: Aig, prefix: str = "") -> dict[str, int]:
    """Encode an AIG; returns the CNF literal of every output.

    Output values are returned as *variables whose truth equals the output*
    (an extra variable is introduced for complemented outputs).
    """
    node_var: dict[int, int] = {}
    zero = builder.var(prefix + "__const0")
    builder.add_clause([-zero])
    node_var[0] = zero
    for index, name in enumerate(aig.pi_names):
        node_var[index + 1] = builder.var(name)

    def literal(lit: int) -> int:
        variable = node_var[aig.lit_node(lit)]
        return -variable if aig.lit_phase(lit) else variable

    for node in sorted(aig.fanins):
        a, b = aig.fanins[node]
        out = builder.var(f"{prefix}__and{node}")
        node_var[node] = out
        builder.add_clause([-out, literal(a)])
        builder.add_clause([-out, literal(b)])
        builder.add_clause([out, -literal(a), -literal(b)])

    outputs: dict[str, int] = {}
    for out_name, lit in aig.outputs.items():
        raw = literal(lit)
        if raw > 0:
            outputs[out_name] = raw
        else:
            # Alias variable for a complemented output: alias <-> not(v).
            alias = builder.var(prefix + "__out_" + out_name)
            builder.add_clause([alias, -raw])
            builder.add_clause([-alias, raw])
            outputs[out_name] = alias
    return outputs


def networks_equivalent(left: LogicNetwork, right: LogicNetwork) -> bool:
    """SAT-based combinational equivalence check (miter construction).

    Both networks must have the same primary inputs and output names.

    Raises:
        ValueError: on interface mismatches.
    """
    if left.primary_inputs != right.primary_inputs:
        raise ValueError("primary input lists differ")
    if set(left.outputs) != set(right.outputs):
        raise ValueError("output name sets differ")
    builder = CnfBuilder()
    encode_network(builder, left, prefix="L_")
    encode_network(builder, right, prefix="R_")

    def signal_var(network: LogicNetwork, prefix: str, out_name: str) -> int:
        signal = network.outputs[out_name]
        if signal in network.primary_inputs:
            return builder.var(signal)
        return builder.var(prefix + signal)

    difference_vars = []
    for out_name in left.outputs:
        left_var = signal_var(left, "L_", out_name)
        right_var = signal_var(right, "R_", out_name)
        diff = builder.solver.new_var()
        builder.encode_xor(diff, left_var, right_var)
        difference_vars.append(diff)
    builder.add_clause(difference_vars)  # some output differs
    sat, _ = builder.solver.solve()
    return not sat
