"""A compact CNF SAT solver (DPLL with two-watched-literal propagation).

Reference [16] of the paper computes network flexibilities with
simulation + satisfiability; this module supplies the satisfiability half
of that substrate: a dependency-free solver adequate for the miter-style
equivalence and ODC queries that arise at this project's scale.

Literal convention (DIMACS): variables are positive integers; a negative
integer is the complemented literal.  Clauses are lists of literals.

The solver implements:

* two-watched-literal unit propagation,
* conflict-driven backtracking with simple clause learning
  (first-unique-implication-point resolution),
* VSIDS-lite decision ordering (bump-on-conflict activity),
* Luby-sequence restarts with phase saving (decisions re-use the last
  polarity a variable was assigned, so a restart re-descends into the
  same part of the search space at almost no cost),
* sound incremental solving under assumptions, with an optional
  per-call conflict budget.

Incremental soundness
---------------------

Learned clauses persist in ``self.clauses`` across :meth:`SatSolver.solve`
calls, so the derivation of every learned clause must only use the
*permanent* clause database — never the call-local assumptions.  The
solver guarantees this the MiniSat way: each assumption literal opens its
**own decision level** (level ``i`` for assumption ``i``), so 1-UIP
analysis keeps assumption literals inside the learned clause (only true
level-0 literals — unit clauses, themselves permanent — are dropped).  A
clause learned under ``solve(assumptions=[a])`` therefore reads
``(not a) or ...`` and stays valid for a later call assuming ``not a``.

An earlier revision enqueued assumptions at level 0, which made
``analyze`` silently drop them from learned clauses; a clause learned
under one assumption set could then make a later call with contradictory
assumptions wrongly UNSAT (see ``tests/sat/test_solver.py::
TestAssumptionSoundness`` for the minimal reproduction).
"""

from __future__ import annotations

import heapq

__all__ = ["SatSolver", "Satisfiable", "Unsatisfiable", "Unknown", "luby"]

Satisfiable = True
Unsatisfiable = False
Unknown = None
"""Returned by :meth:`SatSolver.solve` when ``max_conflicts`` ran out."""

RESTART_BASE = 64
"""Conflicts allowed before the first restart; later restarts scale this
by the Luby sequence (1, 1, 2, 1, 1, 2, 4, ...)."""


def luby(index: int) -> int:
    """The ``index``-th term (1-based) of the Luby sequence 1,1,2,1,1,2,4,...

    Term ``2^k - 1`` is ``2^(k-1)``; any other index recurses into the
    previous full subsequence.
    """
    if index < 1:
        raise ValueError("luby() is 1-based")
    while (index + 1) & index:  # until index == 2^k - 1
        # Largest m with 2^m - 1 < index; drop the leading subsequence.
        m = (index + 1).bit_length() - 1
        index -= (1 << m) - 1
    return (index + 1) >> 1


class SatSolver:
    """An incremental CNF solver."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self._units: list[int] = []
        self._watches: dict[int, list[int]] = {}
        self._activity: dict[int, float] = {}
        self._saved_phase: dict[int, bool] = {}
        # Lazy max-heap over (-activity, var) for decision picking; stale
        # entries are skipped on pop.  Persistent across solve() calls so
        # incremental use stays O(new vars), not O(all vars), per call.
        self._heap: list[tuple[float, int]] = []
        self._heap_high_water = 0
        self.total_conflicts = 0
        self.total_restarts = 0
        self.total_solves = 0

    # ---------------------------------------------------------------- input

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals) -> None:
        """Add a clause (a non-empty iterable of non-zero ints).

        Raises:
            ValueError: on empty clauses or zero literals.
        """
        clause = list(dict.fromkeys(int(l) for l in literals))
        if not clause:
            raise ValueError("empty clause (formula is trivially UNSAT)")
        if any(l == 0 for l in clause):
            raise ValueError("literal 0 is not allowed")
        for literal in clause:
            self.num_vars = max(self.num_vars, abs(literal))
        if any(-l in clause for l in clause):
            return  # tautological clause
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        index = len(self.clauses)
        self.clauses.append(clause)
        for literal in clause[:2]:
            self._watches.setdefault(literal, []).append(index)

    # --------------------------------------------------------------- solving

    def solve(
        self, assumptions=(), *, max_conflicts: int | None = None
    ) -> tuple[bool | None, dict[int, bool]]:
        """Decide satisfiability.

        Args:
            assumptions: literals forced true for this call.  Each opens
                its own decision level, so clauses learned under
                assumptions remain sound for later calls (see the module
                docstring).
            max_conflicts: optional conflict budget; when exhausted the
                call gives up and returns :data:`Unknown` (``None``) —
                any clauses learned so far are kept and remain sound.

        Returns:
            ``(True, model)`` with a full assignment, ``(False, {})``
            when unsatisfiable under the assumptions, or ``(None, {})``
            when the conflict budget ran out.
        """
        assumption_literals = [int(l) for l in assumptions]
        if any(l == 0 for l in assumption_literals):
            raise ValueError("literal 0 is not allowed as an assumption")
        for literal in assumption_literals:
            self.num_vars = max(self.num_vars, abs(literal))

        assign: dict[int, bool] = {}
        trail: list[tuple[int, int | None]] = []  # (literal, reason clause)
        level_of: dict[int, int] = {}
        decisions: list[int] = []  # trail indices at each decision level
        conflicts = 0
        conflicts_since_restart = 0
        restart_number = 0
        restart_limit = RESTART_BASE * luby(1)
        prop_head = 0  # trail position up to which propagation is done
        consumed: set[int] = set()  # vars whose heap entry was popped
        self.total_solves += 1

        # Seed heap entries for variables allocated since the last call.
        while self._heap_high_water < self.num_vars:
            self._heap_high_water += 1
            variable = self._heap_high_water
            heapq.heappush(
                self._heap, (-self._activity.get(variable, 0.0), variable)
            )

        def value(literal: int) -> bool | None:
            polarity = assign.get(abs(literal))
            if polarity is None:
                return None
            return polarity if literal > 0 else not polarity

        def enqueue(literal: int, reason: int | None) -> bool:
            current = value(literal)
            if current is not None:
                return current
            variable = abs(literal)
            polarity = literal > 0
            assign[variable] = polarity
            self._saved_phase[variable] = polarity
            level_of[variable] = len(decisions)
            trail.append((literal, reason))
            return True

        def propagate() -> int | None:
            """Run unit propagation; return a conflicting clause index.

            Resumes from where the previous call stopped (``prop_head``);
            :func:`backtrack` rewinds the head with the trail, so work is
            linear in enqueued literals rather than quadratic.
            """
            nonlocal prop_head
            while prop_head < len(trail):
                literal, _ = trail[prop_head]
                prop_head += 1
                falsified = -literal
                watchers = self._watches.get(falsified, [])
                index = 0
                while index < len(watchers):
                    clause_index = watchers[index]
                    clause = self.clauses[clause_index]
                    # Ensure the falsified literal sits at position 1.
                    if clause[0] == falsified:
                        clause[0], clause[1] = clause[1], clause[0]
                    other = clause[0]
                    if value(other) is True:
                        index += 1
                        continue
                    # Look for a replacement watch.
                    moved = False
                    for pos in range(2, len(clause)):
                        if value(clause[pos]) is not False:
                            clause[1], clause[pos] = clause[pos], clause[1]
                            self._watches.setdefault(clause[1], []).append(
                                clause_index
                            )
                            watchers[index] = watchers[-1]
                            watchers.pop()
                            moved = True
                            break
                    if moved:
                        continue
                    if value(other) is False:
                        return clause_index  # conflict
                    enqueue(other, clause_index)
                    index += 1
            return None

        def analyze(conflict_index: int) -> tuple[list[int], int]:
            """1-UIP conflict analysis -> (learned clause, backjump level).

            Level-0 literals are dropped: they are implied by permanent
            unit clauses, so omitting them keeps the learned clause both
            correct and strictly stronger.  Assumption literals live at
            levels >= 1 and are therefore always kept.
            """
            current_level = len(decisions)
            seen: set[int] = set()
            learned: list[int] = []
            counter = 0
            clause = list(self.clauses[conflict_index])
            cursor = len(trail) - 1
            uip_literal = 0
            while True:
                for literal in clause:
                    variable = abs(literal)
                    if variable in seen or value(literal) is not False:
                        continue
                    seen.add(variable)
                    bumped = self._activity.get(variable, 0.0) + 1.0
                    self._activity[variable] = bumped
                    heapq.heappush(self._heap, (-bumped, variable))
                    if level_of.get(variable, 0) >= current_level:
                        counter += 1
                    elif level_of.get(variable, 0) > 0:
                        learned.append(literal)
                while cursor >= 0:
                    trail_literal, reason = trail[cursor]
                    if abs(trail_literal) in seen:
                        break
                    cursor -= 1
                trail_literal, reason = trail[cursor]
                cursor -= 1
                counter -= 1
                if counter == 0:
                    uip_literal = -trail_literal
                    break
                clause = list(self.clauses[reason]) if reason is not None else []
            learned.append(uip_literal)
            if len(learned) == 1:
                return learned, 0
            back_level = max(
                level_of.get(abs(l), 0) for l in learned if l != uip_literal
            )
            return learned, back_level

        def backtrack(level: int) -> None:
            nonlocal prop_head
            while decisions and len(decisions) > level:
                mark = decisions.pop()
                while len(trail) > mark:
                    literal, _ = trail.pop()
                    variable = abs(literal)
                    del assign[variable]
                    del level_of[variable]
                    if variable in consumed:
                        # Freshly unassigned: restore its decision-heap
                        # entry at the current activity.
                        consumed.discard(variable)
                        heapq.heappush(
                            self._heap,
                            (-self._activity.get(variable, 0.0), variable),
                        )
            prop_head = min(prop_head, len(trail))

        def decide() -> int:
            """Pop the highest-activity unassigned variable off the heap."""
            while self._heap:
                _, variable = heapq.heappop(self._heap)
                consumed.add(variable)
                if variable not in assign:
                    return variable
            # Defensive: the heap invariant should make this unreachable.
            for variable in range(1, self.num_vars + 1):
                if variable not in assign:
                    return variable
            raise AssertionError("decide() with a complete assignment")

        # Level 0 holds exactly the permanent unit clauses.
        for literal in self._units:
            if not enqueue(int(literal), None):
                return Unsatisfiable, {}
        if propagate() is not None:
            return Unsatisfiable, {}

        try:
            while True:
                if len(decisions) < len(assumption_literals):
                    # Establish the next assumption on its own level.
                    literal = assumption_literals[len(decisions)]
                    current = value(literal)
                    if current is False:
                        return Unsatisfiable, {}
                    decisions.append(len(trail))
                    if current is None:
                        enqueue(literal, None)
                elif len(assign) >= self.num_vars:
                    model = {
                        v: assign.get(v, False)
                        for v in range(1, self.num_vars + 1)
                    }
                    return Satisfiable, model
                else:
                    # Decide: highest-activity unassigned variable, set to
                    # its saved phase (last polarity held; default true).
                    decision = decide()
                    decisions.append(len(trail))
                    if not self._saved_phase.get(decision, True):
                        decision = -decision
                    enqueue(decision, None)
                restart = False
                while True:
                    conflict = propagate()
                    if conflict is None:
                        break
                    if not decisions:
                        return Unsatisfiable, {}
                    conflicts += 1
                    conflicts_since_restart += 1
                    self.total_conflicts += 1
                    if max_conflicts is not None and conflicts > max_conflicts:
                        return Unknown, {}
                    learned, back_level = analyze(conflict)
                    if conflicts_since_restart >= restart_limit:
                        # Luby restart: keep the learned clause, abandon
                        # the current descent.  Phase saving makes the
                        # re-descent cheap, and ``conflicts`` keeps
                        # counting globally so ``max_conflicts`` semantics
                        # are unchanged.
                        restart_number += 1
                        conflicts_since_restart = 0
                        restart_limit = RESTART_BASE * luby(restart_number + 1)
                        self.total_restarts += 1
                        restart = True
                    backtrack(0 if restart else back_level)
                    if len(learned) == 1:
                        # A learned unit is derived from permanent clauses
                        # only, so it may (and should) persist like any
                        # other unit clause.
                        self._units.append(learned[0])
                        if not enqueue(learned[0], None):
                            return Unsatisfiable, {}
                    else:
                        index = len(self.clauses)
                        # Watch the asserting literal + one at back_level.
                        asserting = learned[-1]
                        learned.sort(key=lambda l: l != asserting)
                        self.clauses.append(learned)
                        for literal in learned[:2]:
                            self._watches.setdefault(literal, []).append(index)
                        if not restart:
                            # After a restart the clause need not be
                            # asserting at level 0, so it must not force
                            # its literal.
                            enqueue(asserting, index)
                    if restart:
                        break
        finally:
            # Restore a heap entry for every variable whose entry was
            # consumed this call, so the next call starts complete.
            for variable in consumed:
                heapq.heappush(
                    self._heap, (-self._activity.get(variable, 0.0), variable)
                )
