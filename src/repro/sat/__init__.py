"""Satisfiability substrate: CNF solving, Tseitin encoding, equivalence.

The SAT half of the simulation+SAT flexibility machinery the paper cites
(Mishchenko et al., [16]); also an independent engine for combinational
equivalence checking next to the BDD and dense-truth-table checks.
"""

from .encode import CnfBuilder, encode_aig, encode_network, networks_equivalent
from .solver import SatSolver

__all__ = [
    "CnfBuilder",
    "encode_aig",
    "encode_network",
    "networks_equivalent",
    "SatSolver",
]
