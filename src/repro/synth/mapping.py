"""Tree-covering technology mapping.

The classic DAGON/SIS approach: the subject graph is partitioned into
fanout-free cones at *roots* (multi-fanout vertices and primary outputs);
within each cone, dynamic programming picks the cheapest cell match at
every vertex.  Matches are found by walking cell pattern trees against the
subject DAG with commutative NAND matching and consistent leaf binding
(leaf-DAG patterns like XOR bind repeated leaves to the same vertex).

Two cost modes mirror the paper's Design Compiler runs:

* ``"area"`` — minimise total cell area (the power-optimisation proxy;
  Sec. 3 notes area- and power-optimised implementations are very similar);
* ``"delay"`` — minimise estimated arrival time, with area as tiebreak.
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import Cell, Library
from .netlist import GateInstance, MappedNetlist
from .subject import SubjectGraph

__all__ = ["map_graph", "find_matches"]

_EST_LOAD = 2.0
"""Load estimate used inside the delay DP (actual loads need the mapping)."""


def _match_pattern(
    graph: SubjectGraph,
    ref: int,
    pattern: tuple,
    is_root: int | None,
    roots: set[int],
    binding: dict[str, int],
) -> bool:
    """Try to match *pattern* rooted at vertex *ref* (extends *binding*)."""
    kind = pattern[0]
    if kind == "var":
        name = pattern[1]
        bound = binding.get(name)
        if bound is None:
            binding[name] = ref
            return True
        return bound == ref
    # Internal pattern nodes may not cross a cone boundary: any matched
    # non-leaf vertex other than the match root must be single-fanout.
    if ref != is_root and ref in roots:
        return False
    node = graph.nodes[ref]
    if kind == "inv":
        if node.kind != "inv":
            return False
        return _match_pattern(graph, node.fanins[0], pattern[1], None, roots, binding)
    if kind == "nand":
        if node.kind != "nand":
            return False
        left, right = node.fanins
        saved = dict(binding)
        if _match_pattern(
            graph, left, pattern[1], None, roots, binding
        ) and _match_pattern(graph, right, pattern[2], None, roots, binding):
            return True
        binding.clear()
        binding.update(saved)
        if _match_pattern(
            graph, right, pattern[1], None, roots, binding
        ) and _match_pattern(graph, left, pattern[2], None, roots, binding):
            return True
        binding.clear()
        binding.update(saved)
        return False
    raise ValueError(f"bad pattern node {pattern!r}")


def find_matches(
    graph: SubjectGraph, ref: int, library: Library, roots: set[int]
) -> list[tuple[Cell, dict[str, int]]]:
    """All (cell, leaf-binding) matches rooted at vertex *ref*."""
    matches = []
    node = graph.nodes[ref]
    if node.kind not in ("inv", "nand"):
        return matches
    for cell in library.cells:
        binding: dict[str, int] = {}
        if _match_pattern(graph, ref, cell.pattern, ref, roots, binding):
            matches.append((cell, dict(binding)))
    return matches


@dataclass
class _Choice:
    cost: float
    arrival: float
    cell: Cell
    binding: dict[str, int]


def map_graph(
    graph: SubjectGraph,
    library: Library,
    *,
    mode: str = "area",
) -> MappedNetlist:
    """Cover the subject graph with library cells.

    Args:
        graph: the INV/NAND2 subject graph.
        library: the target cell library.
        mode: ``"area"`` or ``"delay"``.

    Returns:
        A topologically ordered :class:`MappedNetlist`.

    Raises:
        ValueError: on an unknown mode or an uncoverable vertex (which
            would indicate a library without INV/NAND2 base cells).
    """
    if mode not in ("area", "delay"):
        raise ValueError(f"unknown mapping mode {mode!r}")
    fanouts = graph.fanout_counts()
    roots = {
        ref
        for ref, node in enumerate(graph.nodes)
        if node.kind in ("inv", "nand") and fanouts[ref] > 1
    }
    roots.update(
        ref for ref in graph.outputs.values() if graph.nodes[ref].kind in ("inv", "nand")
    )

    choices: dict[int, _Choice] = {}

    def leaf_cost(ref: int) -> float:
        node = graph.nodes[ref]
        if node.kind in ("pi", "const") or ref in roots:
            return 0.0
        return choices[ref].cost

    def leaf_arrival(ref: int) -> float:
        node = graph.nodes[ref]
        if node.kind in ("pi", "const"):
            return 0.0
        return choices[ref].arrival

    for ref in graph.topological_order():
        node = graph.nodes[ref]
        if node.kind not in ("inv", "nand"):
            continue
        best: _Choice | None = None
        for cell, binding in find_matches(graph, ref, library, roots):
            leaves = [binding[pin] for pin in cell.pins]
            cost = cell.area + sum(leaf_cost(leaf) for leaf in leaves)
            arrival = cell.intrinsic + cell.resistance * _EST_LOAD + max(
                (leaf_arrival(leaf) for leaf in leaves), default=0.0
            )
            if mode == "area":
                key = (cost, arrival)
                best_key = (best.cost, best.arrival) if best else None
            else:
                key = (arrival, cost)
                best_key = (best.arrival, best.cost) if best else None
            if best is None or key < best_key:
                best = _Choice(cost, arrival, cell, binding)
        if best is None:
            raise ValueError(f"vertex {ref} has no match in the library")
        choices[ref] = best

    netlist = MappedNetlist(library, [n.label for n in graph.nodes if n.kind == "pi"])
    emitted: dict[int, str] = {}

    def emit(ref: int) -> str:
        node = graph.nodes[ref]
        if node.kind == "pi":
            return node.label
        if node.kind == "const":
            name = f"const{node.label}"
            netlist.constants[name] = node.label == "1"
            return name
        cached = emitted.get(ref)
        if cached is not None:
            return cached
        choice = choices[ref]
        inputs = [emit(choice.binding[pin]) for pin in choice.cell.pins]
        name = f"t{ref}"
        emitted[ref] = name
        netlist.gates.append(GateInstance(choice.cell, name, inputs))
        return name

    for out_name, ref in graph.outputs.items():
        netlist.outputs[out_name] = emit(ref)
    return netlist
