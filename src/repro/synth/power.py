"""Power analysis: exact switching activity plus leakage.

Signal probabilities come from exhaustive evaluation of the netlist over
the primary-input space (exact — no spatial-correlation approximations are
needed at the paper's scale).  Under uniform random inputs the toggle
probability of a signal with one-probability ``p`` is ``2 p (1 - p)``;
dynamic power is the activity-weighted capacitive load, and total power
adds cell leakage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .netlist import MappedNetlist

__all__ = ["PowerReport", "power_analysis"]


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown.

    Attributes:
        dynamic: activity-weighted switched capacitance.
        leakage: total static leakage.
        total: dynamic + leakage.
        activities: per-signal toggle probability.
    """

    dynamic: float
    leakage: float
    activities: dict[str, float]

    @property
    def total(self) -> float:
        """Combined power figure (the number reported in the figures)."""
        return self.dynamic + self.leakage


def power_analysis(netlist: MappedNetlist) -> PowerReport:
    """Exact-activity power report for the netlist."""
    values = netlist.evaluate()
    loads = netlist.loads()
    activities: dict[str, float] = {}
    dynamic = 0.0
    for signal, table in values.items():
        probability = float(np.mean(table))
        activity = 2.0 * probability * (1.0 - probability)
        activities[signal] = activity
        dynamic += activity * loads.get(signal, 0.0)
    return PowerReport(dynamic=dynamic, leakage=netlist.leakage(), activities=activities)
