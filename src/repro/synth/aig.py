"""AND-inverter graphs — the ABC-style cross-validation optimiser.

The paper double-checks its Design Compiler results by pushing the same
specifications through ABC's ``resyn2rs`` script.  This module provides the
equivalent second, structurally independent optimisation pipeline:

* a structurally hashed AIG with constant propagation and trivial-AND
  simplification,
* ``balance()`` — depth-optimal reassociation of conjunction trees,
* ``collapse_refactor()`` — global collapse to truth tables followed by
  ESPRESSO + algebraic refactoring and re-strashing (the heavy-hammer
  equivalent of ABC's refactor passes at this problem scale),
* :func:`resyn2rs` — the composed script,
* :meth:`Aig.to_network` — lowering back to an SOP network so the standard
  mapper/timing/power stack can measure the result.

Literal encoding: literal ``2*node + phase`` with ``phase=1`` meaning
complemented; node 0 is the constant-0 node, nodes ``1..num_pis`` are the
primary inputs, AND nodes follow.
"""

from __future__ import annotations

import numpy as np

from ..espresso.cube import FREE, V0, V1, Cover
from ..espresso.minimize import espresso
from .factor import And, Expr, Lit, Or, good_factor
from .kernels import cover_to_cubes
from .network import LogicNetwork

__all__ = ["Aig", "aig_from_network", "resyn2rs"]


class Aig:
    """A structurally hashed AND-inverter graph."""

    def __init__(self, num_pis: int, pi_names: list[str] | None = None):
        self.num_pis = num_pis
        self.pi_names = list(pi_names) if pi_names else [f"x{i}" for i in range(num_pis)]
        if len(self.pi_names) != num_pis:
            raise ValueError("pi_names length mismatch")
        # fanins[i] = (lit0, lit1) for AND node i; PIs/const have no entry.
        self.fanins: dict[int, tuple[int, int]] = {}
        self._strash: dict[tuple[int, int], int] = {}
        self._next_node = num_pis + 1
        self.outputs: dict[str, int] = {}  # output name -> literal

    # --------------------------------------------------------------- literals

    @staticmethod
    def lit_not(lit: int) -> int:
        """Complement a literal."""
        return lit ^ 1

    @staticmethod
    def lit_node(lit: int) -> int:
        """Node index of a literal."""
        return lit >> 1

    @staticmethod
    def lit_phase(lit: int) -> int:
        """1 when the literal is complemented."""
        return lit & 1

    @property
    def const0(self) -> int:
        """The constant-0 literal."""
        return 0

    @property
    def const1(self) -> int:
        """The constant-1 literal."""
        return 1

    def pi_lit(self, index: int) -> int:
        """The literal of primary input *index*."""
        if not 0 <= index < self.num_pis:
            raise ValueError(f"PI index {index} out of range")
        return 2 * (index + 1)

    # ------------------------------------------------------------ construction

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with simplification and strashing."""
        if a == self.const0 or b == self.const0 or a == self.lit_not(b):
            return self.const0
        if a == self.const1:
            return b
        if b == self.const1:
            return a
        if a == b:
            return a
        key = (a, b) if a <= b else (b, a)
        existing = self._strash.get(key)
        if existing is not None:
            return 2 * existing
        node = self._next_node
        self._next_node += 1
        self.fanins[node] = key
        self._strash[key] = node
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return self.lit_not(self.and_(self.lit_not(a), self.lit_not(b)))

    def and_many(self, literals: list[int]) -> int:
        """Balanced conjunction of a literal list (1 for empty)."""
        if not literals:
            return self.const1
        layer = list(literals)
        while len(layer) > 1:
            layer = [
                self.and_(layer[i], layer[i + 1]) if i + 1 < len(layer) else layer[i]
                for i in range(0, len(layer), 2)
            ]
        return layer[0]

    def or_many(self, literals: list[int]) -> int:
        """Balanced disjunction of a literal list (0 for empty)."""
        return self.lit_not(self.and_many([self.lit_not(l) for l in literals]))

    def set_output(self, name: str, lit: int) -> None:
        """Declare primary output *name* = literal."""
        self.outputs[name] = lit

    # --------------------------------------------------------------- analysis

    @property
    def num_ands(self) -> int:
        """AND-node count — the AIG size metric."""
        return len(self.fanins)

    def depth(self) -> int:
        """Longest PI-to-PO path in AND nodes."""
        levels: dict[int, int] = {0: 0}
        for i in range(1, self.num_pis + 1):
            levels[i] = 0
        for node in sorted(self.fanins):
            a, b = self.fanins[node]
            levels[node] = 1 + max(levels[self.lit_node(a)], levels[self.lit_node(b)])
        if not self.outputs:
            return 0
        return max(levels[self.lit_node(lit)] for lit in self.outputs.values())

    def evaluate(self) -> dict[str, np.ndarray]:
        """Output truth tables over the PI space.

        Runs on the packed bit-parallel engine (:mod:`repro.sim`);
        bit-identical to :meth:`evaluate_reference`.
        """
        from ..sim import engine as sim_engine
        from ..sim import packed as sim_packed

        size = 1 << self.num_pis
        packed = sim_engine.aig_output_words(self)
        return {
            name: sim_packed.unpack_bool(words, size)
            for name, words in packed.items()
        }

    def evaluate_reference(self) -> dict[str, np.ndarray]:
        """Byte-per-vector reference implementation of :meth:`evaluate`
        (the packed engine's test oracle)."""
        size = 1 << self.num_pis
        idx = np.arange(size, dtype=np.int64)
        tables: dict[int, np.ndarray] = {0: np.zeros(size, dtype=bool)}
        for i in range(self.num_pis):
            tables[i + 1] = ((idx >> i) & 1).astype(bool)

        def lit_table(lit: int) -> np.ndarray:
            table = tables[self.lit_node(lit)]
            return ~table if self.lit_phase(lit) else table

        for node in sorted(self.fanins):
            a, b = self.fanins[node]
            tables[node] = lit_table(a) & lit_table(b)
        return {name: lit_table(lit) for name, lit in self.outputs.items()}

    # ------------------------------------------------------------ optimisation

    def _collect_conjunction(self, lit: int, refs: dict[int, int]) -> list[int]:
        """Flatten a single-fanout AND tree rooted at a positive literal."""
        node = self.lit_node(lit)
        if self.lit_phase(lit) or node not in self.fanins or refs.get(node, 0) > 1:
            return [lit]
        a, b = self.fanins[node]
        return self._collect_conjunction(a, refs) + self._collect_conjunction(b, refs)

    def balanced(self) -> "Aig":
        """A depth-balanced copy (reassociates conjunction chains)."""
        refs: dict[int, int] = {}
        for a, b in self.fanins.values():
            refs[self.lit_node(a)] = refs.get(self.lit_node(a), 0) + 1
            refs[self.lit_node(b)] = refs.get(self.lit_node(b), 0) + 1
        for lit in self.outputs.values():
            refs[self.lit_node(lit)] = refs.get(self.lit_node(lit), 0) + 1

        result = Aig(self.num_pis, self.pi_names)
        mapping: dict[int, int] = {0: result.const0}
        for i in range(self.num_pis):
            mapping[i + 1] = result.pi_lit(i)

        def rebuild(lit: int) -> int:
            node = self.lit_node(lit)
            if node in mapping:
                built = mapping[node]
            else:
                # Collect the conjunction tree from the fanins (starting at
                # the node itself would immediately stop on its own
                # multi-fanout reference and recurse forever).
                a, b = self.fanins[node]
                leaves = self._collect_conjunction(
                    a, refs
                ) + self._collect_conjunction(b, refs)
                built_leaves = [rebuild(leaf) for leaf in leaves]
                built = result.and_many(built_leaves)
                mapping[node] = built
            return result.lit_not(built) if self.lit_phase(lit) else built

        for name, lit in self.outputs.items():
            result.set_output(name, rebuild(lit))
        return result

    def collapse_refactor(self) -> "Aig":
        """Collapse to truth tables, re-minimise, refactor, re-strash.

        Global resynthesis: each output's exact function is minimised with
        ESPRESSO, factored algebraically and rebuilt into a fresh AIG whose
        structural hashing recovers sharing across outputs.
        """
        tables = self.evaluate()
        result = Aig(self.num_pis, self.pi_names)
        pi_lits = {name: result.pi_lit(i) for i, name in enumerate(self.pi_names)}

        def lower(expr: Expr) -> int:
            if isinstance(expr, Lit):
                lit = pi_lits[expr.signal]
                return lit if expr.polarity else result.lit_not(lit)
            parts = [lower(child) for child in expr.children]
            if isinstance(expr, And):
                return result.and_many(parts)
            assert isinstance(expr, Or)
            return result.or_many(parts)

        for name, table in tables.items():
            minterms = np.flatnonzero(table)
            if minterms.size == 0:
                result.set_output(name, result.const0)
                continue
            if minterms.size == table.size:
                result.set_output(name, result.const1)
                continue
            cover = espresso(Cover.from_minterms(self.num_pis, minterms))
            cubes = cover_to_cubes(cover, self.pi_names)
            result.set_output(name, lower(good_factor(cubes)))
        return result

    # ------------------------------------------------------------- conversion

    def to_network(self) -> LogicNetwork:
        """Lower to an SOP network (one AND2 node per AIG node)."""
        network = LogicNetwork(list(self.pi_names))
        signal_of: dict[int, str] = {}
        for i, name in enumerate(self.pi_names):
            signal_of[i + 1] = name

        def cover_for(a_phase: int, b_phase: int) -> Cover:
            row = np.array([[V0 if a_phase else V1, V0 if b_phase else V1]], dtype=np.uint8)
            return Cover(row, 2)

        for node in sorted(self.fanins):
            a, b = self.fanins[node]
            fanin_a = signal_of[self.lit_node(a)]
            fanin_b = signal_of[self.lit_node(b)]
            name = network.fresh_name("g")
            network.add_node(
                name, [fanin_a, fanin_b], cover_for(self.lit_phase(a), self.lit_phase(b))
            )
            signal_of[node] = name

        for out_name, lit in self.outputs.items():
            node = self.lit_node(lit)
            if node == 0:
                constant = Cover.universe(1) if self.lit_phase(lit) else Cover.empty(1)
                name = network.fresh_name("const")
                network.add_node(name, [self.pi_names[0]], constant)
                network.set_output(out_name, name)
                continue
            signal = signal_of[node]
            if self.lit_phase(lit):
                inv_name = network.fresh_name("inv")
                network.add_node(inv_name, [signal], Cover(np.array([[V0]], dtype=np.uint8), 1))
                network.set_output(out_name, inv_name)
            else:
                network.set_output(out_name, signal)
        return network


def aig_from_network(network: LogicNetwork) -> Aig:
    """Lower a Boolean network to an AIG through factored forms."""
    aig = Aig(len(network.primary_inputs), list(network.primary_inputs))
    lits: dict[str, int] = {
        name: aig.pi_lit(i) for i, name in enumerate(network.primary_inputs)
    }

    def lower(expr: Expr) -> int:
        if isinstance(expr, Lit):
            lit = lits[expr.signal]
            return lit if expr.polarity else aig.lit_not(lit)
        parts = [lower(child) for child in expr.children]
        if isinstance(expr, And):
            return aig.and_many(parts)
        assert isinstance(expr, Or)
        return aig.or_many(parts)

    for name in network.topological_order():
        node = network.nodes[name]
        if node.cover.num_cubes == 0:
            lits[name] = aig.const0
            continue
        cubes = cover_to_cubes(node.cover, node.fanins)
        if frozenset() in cubes:
            lits[name] = aig.const1
            continue
        lits[name] = lower(good_factor(cubes))

    for out_name, signal in network.outputs.items():
        aig.set_output(out_name, lits[signal])
    return aig


def resyn2rs(aig: Aig) -> Aig:
    """The cross-validation script: balance, refactor, balance.

    Mirrors the role of ABC's ``resyn2rs`` in the paper — an independent
    optimiser whose area trends confirm the primary flow's results.
    """
    improved = aig.balanced()
    refactored = improved.collapse_refactor()
    if refactored.num_ands <= improved.num_ands:
        improved = refactored
    return improved.balanced()
