"""A generic 70 nm-flavoured standard-cell library.

The paper maps to a commercial 70 nm library through Synopsys Design
Compiler; absolute cell data is irrelevant to its claims (everything is
reported normalised), so this module defines a self-consistent generic
library in abstract units:

* ``area`` — layout area units,
* ``pin_cap`` — input pin capacitance (load units),
* ``resistance`` — output drive resistance: delay = intrinsic + R * load,
* ``intrinsic`` — pin-to-pin intrinsic delay,
* ``leakage`` — static power units.

Each cell carries a *pattern tree* over the NAND2/INV subject basis used by
the tree-covering mapper, and a dense truth table over its pins used for
netlist evaluation and switching-activity power analysis.  High-drive
(``_X2``) variants trade area and input capacitance for drive resistance;
the delay optimiser exploits them.

Pattern grammar (nested tuples)::

    ("var", "a")          leaf — binds a subject-graph signal
    ("inv", P)            inverter over sub-pattern P
    ("nand", P, Q)        2-input NAND (matched commutatively)

Repeated leaf names (as in the XOR cells) must bind the same subject
signal, i.e. patterns may be leaf-DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Cell", "Library", "generic_70nm_library", "pattern_leaves"]

Pattern = tuple
"""A pattern-tree node (see module docstring for the grammar)."""


def pattern_leaves(pattern: Pattern) -> list[str]:
    """Distinct leaf names of a pattern, in first-appearance order."""
    order: list[str] = []

    def walk(node: Pattern) -> None:
        kind = node[0]
        if kind == "var":
            if node[1] not in order:
                order.append(node[1])
        elif kind == "inv":
            walk(node[1])
        elif kind == "nand":
            walk(node[1])
            walk(node[2])
        else:
            raise ValueError(f"bad pattern node {node!r}")

    walk(pattern)
    return order


def _pattern_table(pattern: Pattern, pins: list[str]) -> np.ndarray:
    """Dense truth table of the pattern over *pins* (pin 0 = bit 0)."""
    size = 1 << len(pins)
    idx = np.arange(size)
    values: dict[str, np.ndarray] = {
        pin: ((idx >> position) & 1).astype(bool) for position, pin in enumerate(pins)
    }

    def walk(node: Pattern) -> np.ndarray:
        kind = node[0]
        if kind == "var":
            return values[node[1]]
        if kind == "inv":
            return ~walk(node[1])
        return ~(walk(node[1]) & walk(node[2]))

    return walk(pattern)


@dataclass(frozen=True)
class Cell:
    """One library cell.

    Attributes:
        name: cell name, e.g. ``NAND2_X1``.
        pattern: subject-basis pattern tree the mapper matches.
        area / pin_cap / resistance / intrinsic / leakage: see module doc.
        pins: ordered pin names (derived from the pattern).
        table: output truth table over the pins (derived).
    """

    name: str
    pattern: Pattern
    area: float
    pin_cap: float
    resistance: float
    intrinsic: float
    leakage: float
    pins: tuple[str, ...] = field(default=())
    table: np.ndarray = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        pins = tuple(pattern_leaves(self.pattern))
        object.__setattr__(self, "pins", pins)
        table = _pattern_table(self.pattern, list(pins))
        table.setflags(write=False)
        object.__setattr__(self, "table", table)

    @property
    def num_pins(self) -> int:
        """Number of input pins."""
        return len(self.pins)

    def evaluate(self, pin_values: list[np.ndarray]) -> np.ndarray:
        """Output value arrays given one boolean array per pin."""
        if len(pin_values) != self.num_pins:
            raise ValueError(f"{self.name}: expected {self.num_pins} pin arrays")
        pattern_index = np.zeros(pin_values[0].shape, dtype=np.int64)
        for position, values in enumerate(pin_values):
            pattern_index |= values.astype(np.int64) << position
        return self.table[pattern_index]


@dataclass(frozen=True)
class Library:
    """An immutable collection of cells plus global electrical constants.

    Attributes:
        cells: the mappable cells.
        wire_cap: added load per fanout connection.
        input_drive: drive resistance modelling the source of every PI.
        output_cap: load modelling every PO pin.
    """

    cells: tuple[Cell, ...]
    wire_cap: float = 0.2
    input_drive: float = 0.8
    output_cap: float = 1.0

    def cell(self, name: str) -> Cell:
        """Look up a cell by name.

        Raises:
            KeyError: for unknown cell names.
        """
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(f"no cell named {name!r}")

    def variants_of(self, cell: Cell) -> list[Cell]:
        """All drive variants sharing *cell*'s logical function."""
        stem = cell.name.rsplit("_", 1)[0]
        return [c for c in self.cells if c.name.rsplit("_", 1)[0] == stem]


def generic_70nm_library() -> Library:
    """The default library: 10 functions, X1 drive plus X2 for INV/NAND2.

    Values are loosely modelled on published 65/70 nm educational libraries
    (NangateOpenCell-style ratios): complex cells are cheaper than their
    discrete decompositions, NORs are slower than NANDs (PMOS stacking),
    and X2 variants halve drive resistance for ~50 % more area and double
    pin capacitance.
    """
    a, b, c = ("var", "a"), ("var", "b"), ("var", "c")
    nand_ab = ("nand", a, b)
    cells = (
        Cell("INV_X1", ("inv", a), area=1.0, pin_cap=1.0, resistance=1.0, intrinsic=0.8, leakage=1.0),
        Cell("INV_X2", ("inv", a), area=1.5, pin_cap=2.0, resistance=0.5, intrinsic=0.8, leakage=2.1),
        Cell("NAND2_X1", nand_ab, area=1.4, pin_cap=1.1, resistance=1.1, intrinsic=1.0, leakage=1.6),
        Cell("NAND2_X2", nand_ab, area=2.1, pin_cap=2.2, resistance=0.55, intrinsic=1.0, leakage=3.3),
        Cell("NOR2_X1", ("inv", ("nand", ("inv", a), ("inv", b))), area=1.4, pin_cap=1.2, resistance=1.3, intrinsic=1.3, leakage=1.7),
        Cell("NOR2_X2", ("inv", ("nand", ("inv", a), ("inv", b))), area=2.1, pin_cap=2.4, resistance=0.65, intrinsic=1.3, leakage=3.5),
        Cell("AND2_X1", ("inv", nand_ab), area=1.8, pin_cap=1.0, resistance=1.0, intrinsic=1.6, leakage=1.9),
        Cell("AND2_X2", ("inv", nand_ab), area=2.7, pin_cap=2.0, resistance=0.5, intrinsic=1.6, leakage=3.9),
        Cell("OR2_X1", ("nand", ("inv", a), ("inv", b)), area=1.8, pin_cap=1.0, resistance=1.0, intrinsic=1.7, leakage=2.0),
        Cell("OR2_X2", ("nand", ("inv", a), ("inv", b)), area=2.7, pin_cap=2.0, resistance=0.5, intrinsic=1.7, leakage=4.1),
        Cell("NAND3_X1", ("nand", a, ("inv", ("nand", b, c))), area=1.9, pin_cap=1.2, resistance=1.2, intrinsic=1.3, leakage=2.2),
        Cell("NOR3_X1", ("inv", ("nand", ("inv", ("nand", ("inv", a), ("inv", b))), ("inv", c))), area=2.0, pin_cap=1.3, resistance=1.5, intrinsic=1.9, leakage=2.3),
        Cell("AOI21_X1", ("inv", ("nand", nand_ab, ("inv", c))), area=2.0, pin_cap=1.2, resistance=1.3, intrinsic=1.5, leakage=2.1),
        Cell("OAI21_X1", ("nand", ("nand", ("inv", a), ("inv", b)), c), area=2.0, pin_cap=1.2, resistance=1.3, intrinsic=1.5, leakage=2.1),
        Cell(
            "XOR2_X1",
            ("nand", ("nand", a, ("inv", b)), ("nand", ("inv", a), b)),
            area=3.0, pin_cap=1.5, resistance=1.4, intrinsic=2.2, leakage=2.8,
        ),
        Cell(
            "XNOR2_X1",
            ("inv", ("nand", ("nand", a, ("inv", b)), ("nand", ("inv", a), b))),
            area=3.0, pin_cap=1.5, resistance=1.4, intrinsic=2.4, leakage=2.8,
        ),
    )
    return Library(cells=cells)
