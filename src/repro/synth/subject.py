"""Subject graphs: the NAND2/INV decomposition the mapper covers.

The optimised Boolean network is lowered into a structurally hashed DAG of
inverters and 2-input NANDs (plus PI leaves and constants).  Lowering goes
through each node's factored form, so the subject graph inherits the
multi-level structure found by kernel extraction and factoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .factor import And, Expr, Lit, Or, good_factor
from .kernels import cover_to_cubes
from .network import LogicNetwork

__all__ = ["SubjectGraph", "SubjectNode", "build_subject_graph"]


@dataclass(frozen=True)
class SubjectNode:
    """One subject-graph vertex.

    ``kind`` is ``"pi"`` (leaf, ``label`` holds the signal name),
    ``"const"`` (``label`` is ``"0"`` or ``"1"``), ``"inv"`` or ``"nand"``;
    ``fanins`` hold vertex ids.
    """

    kind: str
    fanins: tuple[int, ...] = ()
    label: str = ""


class SubjectGraph:
    """A structurally hashed INV/NAND2 DAG."""

    def __init__(self) -> None:
        self.nodes: list[SubjectNode] = []
        self._hash: dict[tuple, int] = {}
        self.outputs: dict[str, int] = {}

    # -------------------------------------------------------------- building

    def _intern(self, node: SubjectNode) -> int:
        key = (node.kind, node.fanins, node.label)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        self.nodes.append(node)
        ref = len(self.nodes) - 1
        self._hash[key] = ref
        return ref

    def pi(self, name: str) -> int:
        """The leaf vertex for primary input *name*."""
        return self._intern(SubjectNode("pi", (), name))

    def const(self, value: bool) -> int:
        """A constant vertex."""
        return self._intern(SubjectNode("const", (), "1" if value else "0"))

    def inv(self, ref: int) -> int:
        """Inverter, with double-inversion cancellation."""
        node = self.nodes[ref]
        if node.kind == "inv":
            return node.fanins[0]
        if node.kind == "const":
            return self.const(node.label == "0")
        return self._intern(SubjectNode("inv", (ref,)))

    def nand(self, left: int, right: int) -> int:
        """2-input NAND with commutative hashing and constant folding."""
        for a, b in ((left, right), (right, left)):
            node = self.nodes[a]
            if node.kind == "const":
                if node.label == "0":
                    return self.const(True)
                return self.inv(b)
        if left == right:
            return self.inv(left)
        lo, hi = (left, right) if left <= right else (right, left)
        return self._intern(SubjectNode("nand", (lo, hi)))

    def and_(self, left: int, right: int) -> int:
        """AND = INV(NAND)."""
        return self.inv(self.nand(left, right))

    def or_(self, left: int, right: int) -> int:
        """OR = NAND(INV, INV)."""
        return self.nand(self.inv(left), self.inv(right))

    def set_output(self, name: str, ref: int) -> None:
        """Declare primary output *name* to be vertex *ref*."""
        self.outputs[name] = ref

    # ------------------------------------------------------------- analysis

    def fanout_counts(self) -> np.ndarray:
        """Number of readers of each vertex (outputs count as readers)."""
        counts = np.zeros(len(self.nodes), dtype=np.int64)
        for node in self.nodes:
            for fanin in node.fanins:
                counts[fanin] += 1
        for ref in self.outputs.values():
            counts[ref] += 1
        return counts

    def topological_order(self) -> list[int]:
        """Vertex ids in fanin-first order (construction order suffices —
        vertices are interned only after their fanins exist)."""
        return list(range(len(self.nodes)))

    def evaluate(self, pi_values: dict[str, np.ndarray]) -> list[np.ndarray]:
        """Boolean arrays for every vertex given PI value arrays."""
        shape = next(iter(pi_values.values())).shape if pi_values else (1,)
        values: list[np.ndarray] = []
        for node in self.nodes:
            if node.kind == "pi":
                values.append(pi_values[node.label])
            elif node.kind == "const":
                values.append(np.full(shape, node.label == "1", dtype=bool))
            elif node.kind == "inv":
                values.append(~values[node.fanins[0]])
            else:
                values.append(~(values[node.fanins[0]] & values[node.fanins[1]]))
        return values

    def __len__(self) -> int:
        return len(self.nodes)


def _lower_expr(
    graph: SubjectGraph, expr: Expr, signal_refs: dict[str, int]
) -> int:
    """Lower a factored form to subject vertices (balanced gate trees)."""
    if isinstance(expr, Lit):
        ref = signal_refs[expr.signal]
        return ref if expr.polarity else graph.inv(ref)
    assert isinstance(expr, (And, Or))
    combine = graph.and_ if isinstance(expr, And) else graph.or_
    refs = [_lower_expr(graph, child, signal_refs) for child in expr.children]
    # Balanced reduction keeps the pre-mapping depth logarithmic.
    while len(refs) > 1:
        paired = [
            combine(refs[i], refs[i + 1]) if i + 1 < len(refs) else refs[i]
            for i in range(0, len(refs), 2)
        ]
        refs = paired
    return refs[0]


def build_subject_graph(network: LogicNetwork) -> SubjectGraph:
    """Lower an optimised network to a structurally hashed subject graph.

    Every node's SOP is factored (:func:`~repro.synth.factor.good_factor`)
    and lowered over its fanins' vertices; constant covers become constant
    vertices.
    """
    graph = SubjectGraph()
    refs: dict[str, int] = {}
    for name in network.primary_inputs:
        refs[name] = graph.pi(name)
    for name in network.topological_order():
        node = network.nodes[name]
        if node.cover.num_cubes == 0:
            refs[name] = graph.const(False)
            continue
        cubes = cover_to_cubes(node.cover, node.fanins)
        if frozenset() in cubes:
            refs[name] = graph.const(True)
            continue
        expr = good_factor(cubes)
        refs[name] = _lower_expr(graph, expr, refs)
    for out_name, signal in network.outputs.items():
        graph.set_output(out_name, refs[signal])
    return graph
