"""Internal don't cares and nodal decomposition (Sec. 4 of the paper).

Beyond the *external* DC sets of the specification, every node of a
multi-level network has *internal* flexibility:

* **satisfiability DCs** — fanin patterns no primary-input vector produces;
* **observability DCs** — input vectors under which the node's value never
  reaches a primary output.

The paper's nodal-decomposition extension extracts these per-node DC sets
and runs the same reliability-driven assignment on them, increasing the
rate at which errors *inside* the circuit are logically masked.  This
module implements the extraction (exhaustive and exact over the PI space),
the reassignment loop, and the internal-error-rate metric used to evaluate
it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.ranking import ranking_assignment
from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON
from ..espresso.cube import Cover
from ..espresso.minimize import espresso
from .network import LogicNetwork

__all__ = [
    "node_flexibility",
    "internal_error_rate",
    "reassign_internal_dcs",
    "NodalReport",
]


def _evaluate_with_flip(
    network: LogicNetwork, values: dict[str, np.ndarray], flip: str
) -> np.ndarray:
    """PO tables when signal *flip*'s value is complemented everywhere."""
    patched: dict[str, np.ndarray] = dict(values)
    patched[flip] = ~values[flip]
    for name in network.topological_order():
        if name == flip:
            continue
        node = network.nodes[name]
        if not any(fanin == flip or patched[fanin] is not values[fanin]
                   for fanin in node.fanins):
            continue
        local_table = node.cover.evaluate()
        pattern = np.zeros(values[name].shape, dtype=np.int64)
        for position, fanin in enumerate(node.fanins):
            pattern |= patched[fanin].astype(np.int64) << position
        patched[name] = local_table[pattern]
    return np.vstack([patched[sig] for sig in network.outputs.values()])


def node_flexibility(
    network: LogicNetwork,
    node_name: str,
    *,
    values: dict[str, np.ndarray] | None = None,
    po_table: np.ndarray | None = None,
    external_dc: np.ndarray | None = None,
) -> FunctionSpec:
    """The node's local incompletely specified function over its fanins.

    A fanin pattern is DC when it is unreachable (SDC) or when every PI
    vector producing it is observability-don't-care — flipping the node
    under those vectors changes no primary output (or only outputs that
    are externally DC for that vector, when *external_dc* is given).

    Args:
        network: the network.
        node_name: node to analyse.
        values: pre-computed signal tables (optional, for reuse).
        po_table: pre-computed output table (optional).
        external_dc: boolean array (num_outputs, 2**num_PIs) marking
            externally-DC (output, vector) entries that never matter.

    Returns:
        A single-output :class:`FunctionSpec` over the node's fanins.
    """
    values = values if values is not None else network.evaluate()
    po_table = po_table if po_table is not None else np.vstack(
        [values[sig] for sig in network.outputs.values()]
    )
    node = network.nodes[node_name]
    flipped = _evaluate_with_flip(network, values, node_name)
    observable = po_table != flipped
    if external_dc is not None:
        observable &= ~external_dc
    vector_observable = np.any(observable, axis=0)

    k = len(node.fanins)
    pattern = np.zeros(values[node_name].shape, dtype=np.int64)
    for position, fanin in enumerate(node.fanins):
        pattern |= values[fanin].astype(np.int64) << position

    local_values = node.cover.evaluate()
    phases = np.full(1 << k, DC, dtype=np.uint8)
    reachable = np.zeros(1 << k, dtype=bool)
    np.logical_or.at(reachable, pattern, True)
    cares = np.zeros(1 << k, dtype=bool)
    np.logical_or.at(cares, pattern, vector_observable)
    phases[cares] = np.where(local_values[cares], ON, OFF)
    # Reachable but never-observable patterns and unreachable patterns both
    # stay DC.
    del reachable
    return FunctionSpec(
        phases[None, :],
        name=f"{node_name}/local",
        input_names=tuple(node.fanins),
        output_names=(node_name,),
    )


def internal_error_rate(
    network: LogicNetwork,
    *,
    source_mask: np.ndarray | None = None,
) -> float:
    """Probability that flipping a random internal node propagates.

    Averages, over all internal nodes and admissible PI vectors, the
    indicator that complementing the node's output changes at least one
    primary output.  This is the circuit-internal analogue of the paper's
    input-error rate and the metric the nodal-decomposition extension
    improves.

    Args:
        network: the network under test.
        source_mask: admissible PI vectors (default: all).
    """
    values = network.evaluate()
    po_table = np.vstack([values[sig] for sig in network.outputs.values()])
    size = po_table.shape[1]
    if source_mask is None:
        source_mask = np.ones(size, dtype=bool)
    node_names = list(network.nodes)
    if not node_names:
        return 0.0
    total = 0.0
    for name in node_names:
        flipped = _evaluate_with_flip(network, values, name)
        propagates = np.any(po_table != flipped, axis=0)
        total += float(np.count_nonzero(propagates & source_mask))
    return total / (len(node_names) * max(1, int(np.count_nonzero(source_mask))))


@dataclass(frozen=True)
class NodalReport:
    """Result of an internal-DC reassignment pass.

    Attributes:
        nodes_changed: nodes whose cover was rebuilt.
        dc_entries_assigned: total local DC minterms decided for reliability.
        error_rate_before / error_rate_after: internal error rates.
    """

    nodes_changed: int
    dc_entries_assigned: int
    error_rate_before: float
    error_rate_after: float


def reassign_internal_dcs(
    network: LogicNetwork,
    *,
    policy: str = "cfactor",
    threshold: float = DEFAULT_THRESHOLD,
    fraction: float = 1.0,
    max_fanins: int = 10,
) -> NodalReport:
    """Reassign every node's internal DCs for reliability (in place).

    Nodes are processed one at a time and the network re-simulated after
    each rewrite, so later nodes see flexibilities consistent with earlier
    decisions (the classic compatibility issue with simultaneous ODCs).
    Remaining DCs are used conventionally by ESPRESSO when rebuilding the
    node cover, so area can *shrink* while masking improves.

    Args:
        network: network to rewrite (mutated).
        policy: ``"cfactor"`` (Fig. 7) or ``"ranking"`` (Fig. 3).
        threshold: LC^f threshold for the cfactor policy.
        fraction: fraction of the ranked list for the ranking policy.
        max_fanins: skip nodes with more fanins than this.

    Raises:
        ValueError: on unknown policies, or if a rewrite changes the
            primary outputs (which would indicate an ODC bug).
    """
    if policy not in ("cfactor", "ranking"):
        raise ValueError(f"unknown policy {policy!r}")
    reference = network.output_table()
    before = internal_error_rate(network)
    changed = 0
    assigned_total = 0
    for name in list(network.topological_order()):
        node = network.nodes[name]
        if len(node.fanins) > max_fanins:
            continue
        local = node_flexibility(network, name)
        if not int(np.count_nonzero(local.phases == DC)):
            continue
        if policy == "cfactor":
            assignment = cfactor_assignment(local, threshold)
        else:
            assignment = ranking_assignment(local, fraction)
        assigned = assignment.apply(local) if len(assignment) else local
        on_cover = Cover.from_minterms(len(node.fanins), assigned.on_set(0))
        dc_cover = Cover.from_minterms(len(node.fanins), assigned.dc_set(0))
        node.cover = espresso(on_cover, dc_cover)
        changed += 1
        assigned_total += len(assignment)
        if not bool(np.array_equal(network.output_table(), reference)):
            raise ValueError(f"rewriting node {name!r} changed the primary outputs")
    after = internal_error_rate(network)
    return NodalReport(changed, assigned_total, before, after)
