"""Internal don't cares and nodal decomposition (Sec. 4 of the paper).

Beyond the *external* DC sets of the specification, every node of a
multi-level network has *internal* flexibility:

* **satisfiability DCs** — fanin patterns no primary-input vector produces;
* **observability DCs** — input vectors under which the node's value never
  reaches a primary output.

The paper's nodal-decomposition extension extracts these per-node DC sets
and runs the same reliability-driven assignment on them, increasing the
rate at which errors *inside* the circuit are logically masked.  This
module implements the extraction (exhaustive and exact over the PI space),
the reassignment loop, and the internal-error-rate metric used to evaluate
it.

All three run on the packed simulation engine (:mod:`repro.sim`): the
network is simulated once into 64-vectors-per-word signals, each node
flip re-evaluates only the flipped node's fanout cone
(:class:`~repro.sim.incremental.IncrementalNetworkSim`), and pattern
reachability/observability is decided with per-pattern word masks
instead of scatter operations.  An N-node sweep therefore costs
``O(sum of cone sizes)`` node evaluations rather than N full network
re-simulations; ``_evaluate_with_flip`` keeps the original full-walk
boolean implementation as the oracle for the equivalence tests and the
``odc_incremental_vs_full`` benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.ranking import complete_assignment, ranking_assignment
from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON
from ..espresso.cube import Cover
from ..espresso.minimize import espresso
from ..obs import metrics as obs_metrics
from ..obs import span
from ..sim import packed as pk
from ..sim.engine import eval_node
from ..sim.incremental import IncrementalNetworkSim
from .network import LogicNetwork

__all__ = [
    "MAX_EXHAUSTIVE_FANINS",
    "node_flexibility",
    "internal_error_rate",
    "reassign_internal_dcs",
    "NodalReport",
]

MAX_EXHAUSTIVE_FANINS = 16
"""Hard cap on node fanin count for local-flexibility extraction.

Every extractor materialises the node's ``2^k`` local pattern space (the
``phases`` array of the returned :class:`FunctionSpec`), so a wide node
would silently allocate gigabytes before failing.  Extraction raises a
:class:`ValueError` above this cap instead; callers that sweep whole
networks (:func:`reassign_internal_dcs`) route or skip such nodes
explicitly (``wide_nodes=``).
"""


def _evaluate_with_flip(
    network: LogicNetwork, values: dict[str, np.ndarray], flip: str
) -> np.ndarray:
    """PO tables when signal *flip*'s value is complemented everywhere.

    Boolean full-topological-walk reference for the packed cone-restricted
    path (:meth:`IncrementalNetworkSim.flip_outputs`); used by the
    equivalence tests and benchmark baselines, not by the hot paths.
    """
    patched: dict[str, np.ndarray] = dict(values)
    patched[flip] = ~values[flip]
    for name in network.topological_order():
        if name == flip:
            continue
        node = network.nodes[name]
        if not any(fanin == flip or patched[fanin] is not values[fanin]
                   for fanin in node.fanins):
            continue
        local_table = node.cover.evaluate()
        pattern = np.zeros(values[name].shape, dtype=np.int64)
        for position, fanin in enumerate(node.fanins):
            pattern |= patched[fanin].astype(np.int64) << position
        patched[name] = local_table[pattern]
    return np.vstack([patched[sig] for sig in network.outputs.values()])


def _window_observability(
    network: LogicNetwork,
    node_name: str,
    sim: IncrementalNetworkSim,
    window_levels: int,
) -> np.ndarray:
    """OR-reduced packed flip-diff at a k-level fanout-window boundary.

    The window is the BFS fanout neighbourhood of *node_name* up to
    *window_levels* levels deep; observation points are the window
    signals that are primary outputs or feed a reader outside the
    window.  Every path from the node to a primary output crosses an
    observation point, so a vector under which no observation point
    changes cannot change any PO — window-limited ODCs are a sound
    subset of the complete ones.
    """
    if window_levels < 1:
        raise ValueError(f"window_levels must be >= 1, got {window_levels}")
    fanouts = network.fanouts()
    window = network.fanout_window(node_name, window_levels)
    po_signals = set(network.outputs.values())
    observation = [
        signal
        for signal in window
        if signal in po_signals
        or any(reader not in window for reader in fanouts.get(signal, []))
    ]
    position = {name: i for i, name in enumerate(network.topological_order())}
    patched: dict[str, np.ndarray] = {
        node_name: pk.zero_tail(~sim.values[node_name], sim.num_vectors)
    }
    for name in sorted(window - {node_name}, key=position.__getitem__):
        node = network.nodes[name]
        fanin_words = [patched.get(f, sim.values[f]) for f in node.fanins]
        patched[name] = eval_node(node.cover, fanin_words, sim.num_vectors)
    observable = np.zeros(sim.num_words, dtype=np.uint64)
    for signal in observation:
        observable |= patched[signal] ^ sim.values[signal]
    return observable


def node_flexibility(
    network: LogicNetwork,
    node_name: str,
    *,
    values: dict[str, np.ndarray] | None = None,
    external_dc: np.ndarray | None = None,
    sim: IncrementalNetworkSim | None = None,
    window_levels: int | None = None,
) -> FunctionSpec:
    """The node's local incompletely specified function over its fanins.

    A fanin pattern is DC when it is unreachable (SDC) or when every PI
    vector producing it is observability-don't-care — flipping the node
    under those vectors changes no primary output (or only outputs that
    are externally DC for that vector, when *external_dc* is given).

    Args:
        network: the network.
        node_name: node to analyse.
        values: pre-computed boolean signal tables (optional; adopted
            into a packed simulator for reuse).
        external_dc: boolean array (num_outputs, 2**num_PIs) marking
            externally-DC (output, vector) entries that never matter.
            Ignored in window mode (conservative).
        sim: a live :class:`IncrementalNetworkSim` for the network
            (optional, for reuse across nodes — the cheap path).
        window_levels: when given, judge observability at the boundary
            of a fanout window this many levels deep instead of at the
            primary outputs.  Cheaper on deep networks and the fallback
            used by the ``complete_dc`` stage on SAT-budget exhaustion;
            the resulting DC set is a subset of the complete one.

    Returns:
        A single-output :class:`FunctionSpec` over the node's fanins.

    Raises:
        ValueError: when the node has more than
            :data:`MAX_EXHAUSTIVE_FANINS` fanins (the ``2^k`` local
            pattern space would not be materialisable), or when
            *window_levels* is given but < 1.
    """
    if sim is None:
        sim = (
            IncrementalNetworkSim.from_bool_values(network, values)
            if values is not None
            else IncrementalNetworkSim(network)
        )
    node = network.nodes[node_name]
    k = len(node.fanins)
    if k > MAX_EXHAUSTIVE_FANINS:
        raise ValueError(
            f"node {node_name!r} has {k} fanins; local flexibility "
            f"enumerates 2^k patterns and is capped at "
            f"{MAX_EXHAUSTIVE_FANINS} fanins"
        )
    num_vectors = sim.num_vectors

    if window_levels is not None:
        observable = _window_observability(network, node_name, sim, window_levels)
    else:
        diff = sim.output_words() ^ sim.flip_outputs(node_name)
        if external_dc is not None:
            diff &= ~pk.pack_matrix(np.asarray(external_dc, dtype=bool).T)
        observable = np.bitwise_or.reduce(diff, axis=0)

    masks = pk.pattern_masks([sim.values[f] for f in node.fanins], num_vectors)
    cares = np.any(masks & observable, axis=1)
    # Reachable but never-observable patterns and unreachable patterns both
    # stay DC.
    local_values = node.cover.evaluate()
    phases = np.full(1 << k, DC, dtype=np.uint8)
    phases[cares] = np.where(local_values[cares], ON, OFF)
    return FunctionSpec(
        phases[None, :],
        name=f"{node_name}/local",
        input_names=tuple(node.fanins),
        output_names=(node_name,),
    )


def internal_error_rate(
    network: LogicNetwork,
    *,
    source_mask: np.ndarray | None = None,
    sim: IncrementalNetworkSim | None = None,
    fault_model=None,
) -> float:
    """Probability that a random internal-node fault propagates.

    Averages, over all internal nodes and admissible PI vectors, the
    indicator that injecting the fault on the node changes at least one
    primary output.  The default fault is the paper-era complement
    (node flip); any node-scope :class:`~repro.faults.FaultModel` —
    e.g. ``StuckAtNode`` — can be injected instead.  This is the
    circuit-internal analogue of the paper's input-error rate and the
    metric the nodal-decomposition extension improves.

    Args:
        network: the network under test.
        source_mask: admissible PI vectors (default: all).
        sim: a live :class:`IncrementalNetworkSim` to reuse (optional).
        fault_model: node-scope fault model or declarative spec
            (default: the node flip).
    """
    node_names = list(network.nodes)
    if not node_names:
        return 0.0
    if fault_model is not None:
        from ..faults import create_fault_model

        fault_model = create_fault_model(fault_model)
        if fault_model.scope != "node":
            raise ValueError(
                f"fault model {fault_model.name!r} has scope "
                f"{fault_model.scope!r}; the internal error rate needs a "
                f"node-scope model"
            )
    if sim is None:
        sim = IncrementalNetworkSim(network)
    base = sim.output_words()
    if source_mask is None:
        source_words = None
        admissible = sim.num_vectors
    else:
        source_words = pk.pack_bool(np.asarray(source_mask, dtype=bool))
        admissible = pk.popcount(source_words)
    total = 0
    with span("odc.internal_error_rate", nodes=len(node_names)):
        for name in node_names:
            if fault_model is None:
                diff = np.bitwise_or.reduce(
                    base ^ sim.flip_outputs(name), axis=0
                )
            else:
                diff = fault_model.node_difference(sim, name)
            if source_words is not None:
                diff = diff & source_words
            total += pk.popcount(diff)
    return total / (len(node_names) * max(1, admissible))


@dataclass(frozen=True)
class NodalReport:
    """Result of an internal-DC reassignment pass.

    Attributes:
        nodes_changed: nodes whose cover was rebuilt.
        dc_entries_assigned: total local DC minterms decided for reliability.
        error_rate_before / error_rate_after: internal error rates.
    """

    nodes_changed: int
    dc_entries_assigned: int
    error_rate_before: float
    error_rate_after: float


def reassign_internal_dcs(
    network: LogicNetwork,
    *,
    policy: str = "cfactor",
    threshold: float = DEFAULT_THRESHOLD,
    fraction: float = 1.0,
    max_fanins: int = 10,
    wide_nodes: str = "skip",
    fault_model=None,
) -> NodalReport:
    """Reassign every node's internal DCs for reliability (in place).

    Nodes are processed one at a time and the affected fanout cone
    re-simulated after each rewrite, so later nodes see flexibilities
    consistent with earlier decisions (the classic compatibility issue
    with simultaneous ODCs).  Remaining DCs are used conventionally by
    ESPRESSO when rebuilding the node cover, so area can *shrink* while
    masking improves.

    One packed simulator is shared across the whole pass: flexibility
    extraction, the per-rewrite output self-check, and both error-rate
    measurements reuse its signal values, and every rewrite refreshes
    only the rewritten node's cone.

    Args:
        network: network to rewrite (mutated).
        policy: ``"cfactor"`` (Fig. 7), ``"ranking"`` (Fig. 3),
            ``"complete"`` (assign every DC for masking), or
            ``"conventional"`` (leave the DCs to ESPRESSO).
        threshold: LC^f threshold for the cfactor policy.
        fraction: fraction of the ranked list for the ranking policy.
        max_fanins: fanin budget for the exhaustive extractor.
        wide_nodes: what to do with nodes above *max_fanins*:
            ``"skip"`` (default) leaves them untouched and counts them in
            ``odc.wide_nodes_skipped``; ``"sat"`` routes those still
            within :data:`MAX_EXHAUSTIVE_FANINS` through the
            simulation+SAT extractor (and skips, with the counter, only
            the ones beyond the hard cap).
        fault_model: node-scope fault model (or declarative spec) used
            for the report's before/after error rates (default: the
            node flip, the historical metric).

    Raises:
        ValueError: on unknown policies or *wide_nodes* modes, or if a
            rewrite changes the primary outputs (which would indicate an
            ODC bug).
    """
    if policy not in ("conventional", "ranking", "cfactor", "complete"):
        raise ValueError(f"unknown policy {policy!r}")
    if wide_nodes not in ("skip", "sat"):
        raise ValueError(f"unknown wide_nodes mode {wide_nodes!r}")
    with span("odc.reassign", nodes=len(network.nodes), policy=policy):
        sim = IncrementalNetworkSim(network)
        reference = sim.output_words().copy()
        before = internal_error_rate(network, sim=sim, fault_model=fault_model)
        changed = 0
        assigned_total = 0
        for name in list(network.topological_order()):
            node = network.nodes[name]
            if len(node.fanins) > max_fanins:
                if (
                    wide_nodes == "sat"
                    and len(node.fanins) <= MAX_EXHAUSTIVE_FANINS
                ):
                    # Imported lazily: flexibility builds on this module.
                    from .flexibility import node_flexibility_sat

                    local = node_flexibility_sat(network, name)
                else:
                    obs_metrics.counter("odc.wide_nodes_skipped").inc()
                    continue
            else:
                local = node_flexibility(network, name, sim=sim)
            if not int(np.count_nonzero(local.phases == DC)):
                continue
            if policy == "cfactor":
                assignment = cfactor_assignment(local, threshold)
            elif policy == "ranking":
                assignment = ranking_assignment(local, fraction)
            elif policy == "complete":
                assignment = complete_assignment(local)
            else:  # conventional: leave the DCs to ESPRESSO
                assignment = Assignment()
            assigned = assignment.apply(local) if len(assignment) else local
            on_cover = Cover.from_minterms(len(node.fanins), assigned.on_set(0))
            dc_cover = Cover.from_minterms(len(node.fanins), assigned.dc_set(0))
            node.cover = espresso(on_cover, dc_cover)
            changed += 1
            assigned_total += len(assignment)
            sim.recompute(name)
            if not bool(np.array_equal(sim.output_words(), reference)):
                raise ValueError(
                    f"rewriting node {name!r} changed the primary outputs"
                )
        after = internal_error_rate(network, sim=sim, fault_model=fault_model)
    return NodalReport(changed, assigned_total, before, after)
