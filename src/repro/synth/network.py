"""Technology-independent Boolean networks.

A :class:`LogicNetwork` is a DAG of *SOP nodes*: every internal node
computes a sum-of-products (an :class:`~repro.espresso.cube.Cover`) over its
fanin signals.  This is the classic MIS/SIS network model the multi-level
optimisation steps (kernel extraction, factoring) operate on, before
technology mapping turns the network into a cell netlist.

Signals are named strings; primary inputs are declared up front, outputs
point at signals.  Evaluation is dense: every signal's boolean function
over the primary-input space is computed in topological order, which at the
paper's scale (n <= 16 inputs) is exact and fast.  The evaluation methods
run on the packed bit-parallel engine (:mod:`repro.sim`) — 64 vectors per
uint64 word — and unpack at the boundary; ``evaluate_reference`` /
``evaluate_vectors_reference`` keep the byte-per-vector implementations as
the oracle for the engine's equivalence tests.

Structure queries (:meth:`LogicNetwork.topological_order`,
:meth:`LogicNetwork.fanouts`) are cached and invalidated by the mutating
methods; code that rewrites ``node.fanins`` directly must call
:meth:`LogicNetwork.invalidate_structure_caches`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.spec import FunctionSpec
from ..espresso.cube import Cover

__all__ = ["LogicNode", "LogicNetwork"]


@dataclass
class LogicNode:
    """One SOP node: ``name = cover(fanins)``.

    Attributes:
        name: output signal name.
        fanins: fanin signal names; cover variable ``j`` is ``fanins[j]``.
        cover: SOP over the fanins.
    """

    name: str
    fanins: list[str]
    cover: Cover

    def __post_init__(self) -> None:
        if self.cover.num_inputs != len(self.fanins):
            raise ValueError(
                f"node {self.name}: cover arity {self.cover.num_inputs} != "
                f"{len(self.fanins)} fanins"
            )

    @property
    def num_literals(self) -> int:
        """Literal count of the node's SOP."""
        return self.cover.num_literals


class LogicNetwork:
    """A DAG of SOP nodes over named signals."""

    def __init__(self, primary_inputs: list[str]):
        if len(set(primary_inputs)) != len(primary_inputs):
            raise ValueError("duplicate primary input names")
        self.primary_inputs: list[str] = list(primary_inputs)
        self.nodes: dict[str, LogicNode] = {}
        self.outputs: dict[str, str] = {}  # output name -> signal name
        self._counter = 0
        self._topo_cache: tuple[str, ...] | None = None
        self._fanout_cache: dict[str, tuple[str, ...]] | None = None

    # ------------------------------------------------------------- building

    @classmethod
    def from_covers(
        cls,
        input_names: list[str],
        covers: list[Cover],
        output_names: list[str],
    ) -> "LogicNetwork":
        """One SOP node per output, straight from two-level covers."""
        if len(covers) != len(output_names):
            raise ValueError("covers and output names differ in length")
        network = cls(list(input_names))
        for cover, out_name in zip(covers, output_names):
            node_name = network.fresh_name(f"n_{out_name}")
            network.add_node(node_name, list(input_names), cover)
            network.set_output(out_name, node_name)
        return network

    def fresh_name(self, stem: str = "n") -> str:
        """A signal name not yet used in the network."""
        while True:
            self._counter += 1
            name = f"{stem}_{self._counter}"
            if name not in self.nodes and name not in self.primary_inputs:
                return name

    def add_node(self, name: str, fanins: list[str], cover: Cover) -> LogicNode:
        """Add an SOP node; fanins must already exist.

        Raises:
            ValueError: on duplicate names or undefined fanins.
        """
        if name in self.nodes or name in self.primary_inputs:
            raise ValueError(f"signal {name!r} already defined")
        for fanin in fanins:
            if fanin not in self.nodes and fanin not in self.primary_inputs:
                raise ValueError(f"node {name!r}: undefined fanin {fanin!r}")
        node = LogicNode(name, list(fanins), cover)
        self.nodes[name] = node
        self.invalidate_structure_caches()
        return node

    def set_output(self, output_name: str, signal: str) -> None:
        """Declare a primary output pointing at *signal*."""
        if signal not in self.nodes and signal not in self.primary_inputs:
            raise ValueError(f"undefined signal {signal!r}")
        self.outputs[output_name] = signal
        self.invalidate_structure_caches()

    # ------------------------------------------------------------- structure

    def invalidate_structure_caches(self) -> None:
        """Drop the cached topological order and fanout map.

        The mutating methods call this automatically; callers that assign
        ``node.fanins`` directly (e.g. the divisor-extraction rewrites)
        must call it themselves.
        """
        self._topo_cache = None
        self._fanout_cache = None

    def topological_order(self) -> list[str]:
        """Node names in fanin-before-fanout order (cached).

        Raises:
            ValueError: if the network contains a cycle.
        """
        if self._topo_cache is None:
            order: list[str] = []
            state: dict[str, int] = {}

            def visit(name: str) -> None:
                if name in self.primary_inputs:
                    return
                mark = state.get(name, 0)
                if mark == 1:
                    raise ValueError(f"combinational cycle through {name!r}")
                if mark == 2:
                    return
                state[name] = 1
                for fanin in self.nodes[name].fanins:
                    visit(fanin)
                state[name] = 2
                order.append(name)

            for name in self.nodes:
                visit(name)
            self._topo_cache = tuple(order)
        return list(self._topo_cache)

    def fanouts(self) -> dict[str, list[str]]:
        """Map from signal name to the nodes that read it (cached)."""
        if self._fanout_cache is None:
            result: dict[str, list[str]] = {name: [] for name in self.primary_inputs}
            for name in self.nodes:
                result.setdefault(name, [])
            for node in self.nodes.values():
                for fanin in node.fanins:
                    result[fanin].append(node.name)
            self._fanout_cache = {
                name: tuple(readers) for name, readers in result.items()
            }
        return {name: list(readers) for name, readers in self._fanout_cache.items()}

    def fanout_cone(self, name: str) -> list[str]:
        """Transitive fanout of *name*, including *name*, in topological
        order.  *name* must be an internal node."""
        if name not in self.nodes:
            raise ValueError(f"not an internal node: {name!r}")
        fanouts = self.fanouts()
        cone = {name}
        stack = [name]
        while stack:
            for reader in fanouts[stack.pop()]:
                if reader not in cone:
                    cone.add(reader)
                    stack.append(reader)
        return [n for n in self.topological_order() if n in cone]

    def fanout_window(self, name: str, levels: int) -> set[str]:
        """BFS fanout neighbourhood of *name* up to *levels* levels deep,
        including *name*.

        This is the window the window-limited observability analysis
        (:func:`repro.synth.odc.node_flexibility` with ``window_levels``)
        judges flip propagation in; capped at the transitive fanout cone.

        Raises:
            ValueError: if *name* is not an internal node, or
                *levels* < 1.
        """
        if name not in self.nodes:
            raise ValueError(f"not an internal node: {name!r}")
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        fanouts = self.fanouts()
        window = {name}
        frontier = [name]
        for _ in range(levels):
            grown: list[str] = []
            for signal in frontier:
                for reader in fanouts[signal]:
                    if reader not in window:
                        window.add(reader)
                        grown.append(reader)
            if not grown:
                break
            frontier = grown
        return window

    def fanin_support(self, signals) -> set[str]:
        """All signals (internal nodes *and* primary inputs) that
        transitively feed any of *signals*, including the signals
        themselves."""
        support: set[str] = set()
        stack = list(signals)
        while stack:
            signal = stack.pop()
            if signal in support:
                continue
            support.add(signal)
            node = self.nodes.get(signal)
            if node is not None:
                stack.extend(node.fanins)
        return support

    def sweep_dangling(self) -> int:
        """Remove nodes that feed neither an output nor another node.

        Returns:
            Number of nodes removed.
        """
        removed = 0
        while True:
            fanouts = self.fanouts()
            live_outputs = set(self.outputs.values())
            dead = [
                name
                for name in self.nodes
                if not fanouts[name] and name not in live_outputs
            ]
            if not dead:
                return removed
            for name in dead:
                del self.nodes[name]
                removed += 1
            self.invalidate_structure_caches()

    @property
    def num_literals(self) -> int:
        """Total SOP literal count — the technology-independent cost."""
        return sum(node.num_literals for node in self.nodes.values())

    # ------------------------------------------------------------ evaluation

    def evaluate(self) -> dict[str, np.ndarray]:
        """Boolean function of every signal over the primary-input space.

        Runs on the packed bit-parallel engine and unpacks every signal;
        bit-identical to :meth:`evaluate_reference` (tested).
        """
        from ..sim import engine as sim_engine
        from ..sim import packed as sim_packed

        size = 1 << len(self.primary_inputs)
        packed = sim_engine.network_values(self)
        return {
            name: sim_packed.unpack_bool(words, size)
            for name, words in packed.items()
        }

    def evaluate_reference(self) -> dict[str, np.ndarray]:
        """Byte-per-vector reference implementation of :meth:`evaluate`.

        Kept as the oracle for the packed engine's randomized equivalence
        tests and the ``sim_packed_vs_bool`` benchmark baseline.
        """
        size = 1 << len(self.primary_inputs)
        idx = np.arange(size, dtype=np.int64)
        values: dict[str, np.ndarray] = {}
        for position, name in enumerate(self.primary_inputs):
            values[name] = ((idx >> position) & 1).astype(bool)
        for name in self.topological_order():
            node = self.nodes[name]
            local_table = node.cover.evaluate()
            pattern = np.zeros(size, dtype=np.int64)
            for position, fanin in enumerate(node.fanins):
                pattern |= values[fanin].astype(np.int64) << position
            values[name] = local_table[pattern]
        return values

    def evaluate_vectors(self, inputs: np.ndarray) -> dict[str, np.ndarray]:
        """Evaluate every signal on explicit input vectors.

        Unlike :meth:`evaluate`, this does not enumerate the full input
        space and therefore scales to arbitrarily wide networks — the
        entry point for Monte-Carlo reliability estimation.  The vectors
        are packed 64-per-word, simulated on the packed engine, and the
        results unpacked.

        Args:
            inputs: boolean array of shape ``(num_vectors, num_inputs)``;
                column ``j`` is input ``j``.

        Returns:
            Map from signal name to a boolean array of length
            ``num_vectors``.
        """
        from ..sim import engine as sim_engine
        from ..sim import packed as sim_packed

        inputs = np.asarray(inputs, dtype=bool)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.primary_inputs):
            raise ValueError(
                f"expected (*, {len(self.primary_inputs)}) inputs, got {inputs.shape}"
            )
        num_vectors = inputs.shape[0]
        packed = sim_engine.network_values(
            self, sim_packed.pack_matrix(inputs), num_vectors
        )
        return {
            name: sim_packed.unpack_bool(words, num_vectors)
            for name, words in packed.items()
        }

    def evaluate_vectors_reference(self, inputs: np.ndarray) -> dict[str, np.ndarray]:
        """Byte-per-vector reference implementation of
        :meth:`evaluate_vectors` (the packed engine's test oracle)."""
        inputs = np.asarray(inputs, dtype=bool)
        if inputs.ndim != 2 or inputs.shape[1] != len(self.primary_inputs):
            raise ValueError(
                f"expected (*, {len(self.primary_inputs)}) inputs, got {inputs.shape}"
            )
        values: dict[str, np.ndarray] = {
            name: inputs[:, position]
            for position, name in enumerate(self.primary_inputs)
        }
        for name in self.topological_order():
            node = self.nodes[name]
            local_table = node.cover.evaluate()
            pattern = np.zeros(inputs.shape[0], dtype=np.int64)
            for position, fanin in enumerate(node.fanins):
                pattern |= values[fanin].astype(np.int64) << position
            values[name] = local_table[pattern]
        return values

    def output_table(self) -> np.ndarray:
        """Stacked output truth tables, ordered by output declaration."""
        from ..sim import engine as sim_engine
        from ..sim import packed as sim_packed

        size = 1 << len(self.primary_inputs)
        packed = sim_engine.network_values(self)
        return np.vstack(
            [sim_packed.unpack_bool(packed[sig], size) for sig in self.outputs.values()]
        )

    def to_spec(self, *, name: str = "network") -> FunctionSpec:
        """The fully specified function the network implements."""
        return FunctionSpec.from_truth_table(
            self.output_table(),
            name=name,
            input_names=tuple(self.primary_inputs),
            output_names=tuple(self.outputs.keys()),
        )

    def implements(self, spec: FunctionSpec) -> bool:
        """True if the network matches *spec* on *spec*'s care set."""
        return spec.equivalent_within_dc(self.to_spec())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogicNetwork({len(self.primary_inputs)} PIs, {len(self.nodes)} nodes, "
            f"{len(self.outputs)} POs, {self.num_literals} literals)"
        )
