"""Multi-level logic optimisation: shared divisor extraction.

The "Design Compiler" stage of the reproduction's flow.  Starting from the
two-level (per-output) network, it repeatedly extracts the best-value
shared algebraic divisor — a kernel or a cube — into a new node and
re-expresses every divisible node through it, shrinking total literal
count.  This is the MIS/SIS ``gkx``/``gcx`` greedy loop; factoring of the
final nodes happens later, during subject-graph construction.
"""

from __future__ import annotations

from collections import Counter

from .kernels import (
    CubeSet,
    algebraic_divide,
    cover_to_cubes,
    cube_key,
    cube_set_key,
    cube_set_literals,
    cubes_to_cover,
    kernels,
)
from .network import LogicNetwork

__all__ = ["extract_kernels", "extract_cubes", "optimize_network"]


def _node_cubes(network: LogicNetwork, name: str) -> CubeSet:
    node = network.nodes[name]
    return cover_to_cubes(node.cover, node.fanins)


def _rewrite_node(
    network: LogicNetwork,
    name: str,
    quotient: CubeSet,
    remainder: CubeSet,
    divisor_signal: str,
) -> None:
    """Replace node *name* with ``quotient * divisor_signal + remainder``."""
    new_cubes = {cube | {(divisor_signal, True)} for cube in quotient} | set(remainder)
    signals = sorted({literal[0] for cube in new_cubes for literal in cube})
    cover = cubes_to_cover(frozenset(new_cubes), signals)
    node = network.nodes[name]
    node.fanins = signals
    node.cover = cover
    # Direct fanin rewrite: the cached topological order / fanout map are
    # stale now (add_node/set_output invalidate automatically, this does
    # not go through them).
    network.invalidate_structure_caches()


def _install_divisor(network: LogicNetwork, divisor: CubeSet, stem: str) -> str:
    signals = sorted({literal[0] for cube in divisor for literal in cube})
    cover = cubes_to_cover(divisor, signals)
    name = network.fresh_name(stem)
    network.add_node(name, signals, cover)
    return name


def extract_kernels(network: LogicNetwork, *, max_extractions: int = 200) -> int:
    """Greedy shared-kernel extraction.

    Returns:
        Number of divisor nodes created.
    """
    created = 0
    for _ in range(max_extractions):
        candidates: set[CubeSet] = set()
        node_cubes: dict[str, CubeSet] = {}
        node_literals: dict[str, frozenset] = {}
        for name in list(network.nodes):
            cubes = _node_cubes(network, name)
            node_cubes[name] = cubes
            node_literals[name] = frozenset(lit for cube in cubes for lit in cube)
            if len(cubes) < 2:
                continue
            candidates.update(kernels(cubes, max_kernels=50))
        if not candidates:
            break
        # Rank candidates by intrinsic value and only try the most promising
        # ones against every node (full cross-division is quadratic).
        # Score ties are broken canonically (cube_set_key), not by set
        # iteration order, so extraction is hash-seed independent.
        ranked = sorted(
            candidates,
            key=lambda k: (
                -(len(k) - 1) * (cube_set_literals(k) - 1),
                cube_set_key(k),
            ),
        )[:60]
        best_kernel: CubeSet | None = None
        best_value = 0
        divisions: dict[CubeSet, list[tuple[str, CubeSet, CubeSet]]] = {}
        for kernel in ranked:
            kernel_literals = frozenset(lit for cube in kernel for lit in cube)
            uses: list[tuple[str, CubeSet, CubeSet]] = []
            saved = 0
            for name, cubes in node_cubes.items():
                if not kernel_literals <= node_literals[name]:
                    continue
                quotient, remainder = algebraic_divide(cubes, kernel)
                if not quotient:
                    continue
                old_literals = cube_set_literals(cubes)
                new_literals = (
                    cube_set_literals(quotient)
                    + len(quotient)
                    + cube_set_literals(remainder)
                )
                if new_literals < old_literals:
                    uses.append((name, quotient, remainder))
                    saved += old_literals - new_literals
            value = saved - cube_set_literals(kernel)
            if len(uses) >= 1 and value > best_value:
                best_kernel, best_value = kernel, value
                divisions[kernel] = uses
        if best_kernel is None:
            break
        divisor_signal = _install_divisor(network, best_kernel, "k")
        for name, quotient, remainder in divisions[best_kernel]:
            _rewrite_node(network, name, quotient, remainder, divisor_signal)
        created += 1
    return created


def extract_cubes(network: LogicNetwork, *, max_extractions: int = 200) -> int:
    """Greedy shared-cube extraction (common sub-cubes across nodes).

    Returns:
        Number of divisor nodes created.
    """
    created = 0
    for _ in range(max_extractions):
        counts: Counter = Counter()
        for name in network.nodes:
            for cube in _node_cubes(network, name):
                if len(cube) >= 2:
                    for other in _subcubes_of_size_two(cube):
                        counts[other] += 1
        best_cube = None
        best_value = 0
        for cube, occurrences in sorted(
            counts.items(), key=lambda item: (-item[1], cube_key(item[0]))
        ):
            # Extracting a 2-literal cube saves one literal per occurrence
            # beyond the new node's own two literals.
            value = occurrences - 2
            if value > best_value:
                best_cube, best_value = cube, value
        if best_cube is None:
            break
        divisor = frozenset({best_cube})
        divisor_signal = _install_divisor(network, divisor, "c")
        for name in list(network.nodes):
            if name == divisor_signal:
                continue
            cubes = _node_cubes(network, name)
            quotient, remainder = algebraic_divide(cubes, divisor)
            if quotient:
                _rewrite_node(network, name, quotient, remainder, divisor_signal)
        created += 1
    return created


def _subcubes_of_size_two(cube: frozenset) -> list[frozenset]:
    literals = sorted(cube)
    return [
        frozenset({literals[i], literals[j]})
        for i in range(len(literals))
        for j in range(i + 1, len(literals))
    ]


def optimize_network(network: LogicNetwork) -> LogicNetwork:
    """The full technology-independent script: kernels, cubes, cleanup."""
    extract_kernels(network)
    extract_cubes(network)
    network.sweep_dangling()
    return network
