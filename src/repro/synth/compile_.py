"""The synthesis facade: spec in, measured implementation out.

``compile_spec`` plays the role of the paper's Synopsys Design Compiler
runs: two-level minimisation (the conventional assignment of any remaining
DCs), multi-level optimisation, technology mapping to the generic 70 nm
library, objective-specific tuning, and measurement.  The objectives mirror
the paper's scripts:

* ``"delay"`` — maps for arrival time and sizes the critical path
  (``set_max_delay -to [all_outputs] 0``);
* ``"power"`` / ``"area"`` — maps for area with X1 cells (the paper notes
  ``compile -area_effort high`` and the power-optimised runs produce very
  similar implementations).

Every compile ends with an equivalence self-check of the mapped netlist
against the input spec's care set, so a miscompare anywhere in the stack
fails loudly instead of skewing experiment data.

Since the stage-graph refactor both entry points are thin drivers over
:mod:`repro.pipeline`: ``compile_spec`` assembles the ``espresso`` →
``optimize`` → ``map`` → ``tune`` → ``measure`` stages and
``compile_network`` the suffix starting at ``optimize`` — the stage
bodies in :mod:`repro.pipeline.stages` are the canonical implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.spec import FunctionSpec
from ..obs import span
from .library import Library
from .netlist import MappedNetlist
from .network import LogicNetwork

__all__ = ["SynthesisResult", "compile_spec", "compile_network"]

_OBJECTIVES = ("delay", "power", "area")


@dataclass(frozen=True)
class SynthesisResult:
    """Everything the experiments measure about one implementation.

    Attributes:
        netlist: the mapped gate-level netlist.
        area: total cell area.
        delay: critical-path delay.
        power: total (dynamic + leakage) power.
        num_gates: cell instance count.
        literals: technology-independent literal count after optimisation.
        error_rate: exact error rate under the compile's fault model
            (default: the paper's single-bit input flip, with error
            sources drawn from the care set of the originally supplied
            spec — see :mod:`repro.faults`).
        implemented: the fully specified function of the netlist.
    """

    netlist: MappedNetlist
    area: float
    delay: float
    power: float
    num_gates: int
    literals: int
    error_rate: float
    implemented: FunctionSpec


def compile_network(
    network: LogicNetwork,
    spec: FunctionSpec,
    *,
    objective: str = "delay",
    library: Library | None = None,
    optimize: bool = True,
    fault_model=None,
) -> SynthesisResult:
    """Optimise, map and measure an existing network against *spec*.

    A thin driver over the ``optimize`` → ``map`` → ``tune`` →
    ``measure`` stage suffix.  ``fault_model`` selects the measurement's
    error semantics (default: the single-bit input flip).

    Raises:
        ValueError: on unknown objectives or if the mapped netlist fails
            the care-set equivalence self-check.
    """
    from ..pipeline import Pipeline, validate_objective

    validate_objective(objective)
    pipe = Pipeline(
        ["optimize", "map", "tune", "measure"],
        name="compile-network",
        params={
            "objective": objective,
            "library": library,
            "optimize": optimize,
            "fault_model": fault_model,
        },
    )
    ctx = pipe.run(spec=spec, assigned_spec=spec, network=network)
    return ctx.require("synthesis")


def compile_spec(
    spec: FunctionSpec,
    *,
    objective: str = "delay",
    library: Library | None = None,
    source_spec: FunctionSpec | None = None,
    fault_model=None,
) -> SynthesisResult:
    """Full flow from an (incompletely specified) function to measurements.

    Remaining DCs in *spec* are assigned conventionally by the ESPRESSO
    stage.  When *spec* is itself the result of a reliability-driven
    partial assignment, pass the *original* specification as
    ``source_spec`` so the error rate uses the original care set as its
    error-source distribution.  ``fault_model`` selects the
    measurement's error semantics (default: the single-bit input flip).
    """
    from ..pipeline import Pipeline, validate_objective

    source = source_spec or spec
    with span("synth.compile", name=spec.name, objective=objective):
        validate_objective(objective)
        pipe = Pipeline(
            ["espresso", "optimize", "map", "tune", "measure"],
            name="compile-spec",
            params={
                "objective": objective,
                "library": library,
                "fault_model": fault_model,
            },
        )
        ctx = pipe.run(spec=source, assigned_spec=spec)
        return ctx.require("synthesis")
