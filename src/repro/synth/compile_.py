"""The synthesis facade: spec in, measured implementation out.

``compile_spec`` plays the role of the paper's Synopsys Design Compiler
runs: two-level minimisation (the conventional assignment of any remaining
DCs), multi-level optimisation, technology mapping to the generic 70 nm
library, objective-specific tuning, and measurement.  The objectives mirror
the paper's scripts:

* ``"delay"`` — maps for arrival time and sizes the critical path
  (``set_max_delay -to [all_outputs] 0``);
* ``"power"`` / ``"area"`` — maps for area with X1 cells (the paper notes
  ``compile -area_effort high`` and the power-optimised runs produce very
  similar implementations).

Every compile ends with an equivalence self-check of the mapped netlist
against the input spec's care set, so a miscompare anywhere in the stack
fails loudly instead of skewing experiment data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.reliability import error_rate
from ..core.spec import FunctionSpec
from ..espresso.minimize import minimize_spec
from ..obs import metrics as obs_metrics
from ..obs import span
from .library import Library, generic_70nm_library
from .mapping import map_graph
from .netlist import MappedNetlist
from .network import LogicNetwork
from .optimize import optimize_network
from .power import power_analysis
from .subject import build_subject_graph
from .timing import static_timing, upsize_critical

__all__ = ["SynthesisResult", "compile_spec", "compile_network"]

_OBJECTIVES = ("delay", "power", "area")


@dataclass(frozen=True)
class SynthesisResult:
    """Everything the experiments measure about one implementation.

    Attributes:
        netlist: the mapped gate-level netlist.
        area: total cell area.
        delay: critical-path delay.
        power: total (dynamic + leakage) power.
        num_gates: cell instance count.
        literals: technology-independent literal count after optimisation.
        error_rate: single-bit input-error rate, with error sources drawn
            from the care set of the originally supplied spec.
        implemented: the fully specified function of the netlist.
    """

    netlist: MappedNetlist
    area: float
    delay: float
    power: float
    num_gates: int
    literals: int
    error_rate: float
    implemented: FunctionSpec


def compile_network(
    network: LogicNetwork,
    spec: FunctionSpec,
    *,
    objective: str = "delay",
    library: Library | None = None,
    optimize: bool = True,
) -> SynthesisResult:
    """Optimise, map and measure an existing network against *spec*.

    Raises:
        ValueError: on unknown objectives or if the mapped netlist fails
            the care-set equivalence self-check.
    """
    if objective not in _OBJECTIVES:
        raise ValueError(f"objective must be one of {_OBJECTIVES}, got {objective!r}")
    library = library or generic_70nm_library()
    if optimize:
        with span("synth.optimize", nodes=len(network.nodes)):
            optimize_network(network)
    with span("synth.subject_graph"):
        graph = build_subject_graph(network)
    # Area-driven covering for every objective: a constant-load delay DP
    # picks oversized cells whose pin capacitance slows the whole netlist
    # down (measured), so the delay objective instead sizes the critical
    # path of an area-optimal covering — the standard industrial recipe.
    with span("synth.map"):
        netlist = map_graph(graph, library, mode="area")
    if objective == "delay":
        with span("synth.upsize_critical"):
            upsize_critical(netlist, max_rounds=25)
    with span("synth.selfcheck"):
        implemented = netlist.to_spec(name=f"{spec.name}/impl")
        if not spec.equivalent_within_dc(implemented):
            raise ValueError(
                f"synthesis self-check failed: netlist does not implement {spec.name}"
            )
    with span("synth.timing"):
        timing = static_timing(netlist)
    with span("synth.power"):
        power = power_analysis(netlist)
    obs_metrics.counter("synth.networks_compiled").inc()
    obs_metrics.counter("synth.gates_mapped").inc(netlist.num_gates)
    return SynthesisResult(
        netlist=netlist,
        area=netlist.area,
        delay=timing.delay,
        power=power.total,
        num_gates=netlist.num_gates,
        literals=network.num_literals,
        error_rate=error_rate(implemented, spec=spec),
        implemented=implemented,
    )


def compile_spec(
    spec: FunctionSpec,
    *,
    objective: str = "delay",
    library: Library | None = None,
    source_spec: FunctionSpec | None = None,
) -> SynthesisResult:
    """Full flow from an (incompletely specified) function to measurements.

    Remaining DCs in *spec* are assigned conventionally by the ESPRESSO
    stage.  When *spec* is itself the result of a reliability-driven
    partial assignment, pass the *original* specification as
    ``source_spec`` so the error rate uses the original care set as its
    error-source distribution.
    """
    source = source_spec or spec
    with span("synth.compile", name=spec.name, objective=objective):
        with span("synth.minimize"):
            minimized = minimize_spec(spec)
        network = LogicNetwork.from_covers(
            list(spec.input_names), minimized.covers, list(spec.output_names)
        )
        result = compile_network(
            network, spec, objective=objective, library=library
        )
    if source is not spec:
        result = SynthesisResult(
            netlist=result.netlist,
            area=result.area,
            delay=result.delay,
            power=result.power,
            num_gates=result.num_gates,
            literals=result.literals,
            error_rate=error_rate(result.implemented, spec=source),
            implemented=result.implemented,
        )
    return result
