"""Simulation + SAT flexibility extraction (the paper's ref. [16] approach).

:mod:`repro.synth.odc` computes node flexibilities exhaustively over the
primary-input space — exact, but limited to ~20 inputs.  This module
implements the scalable alternative the paper cites (Mishchenko et al.,
"Using simulation and satisfiability to compute flexibilities in Boolean
networks"; Mishchenko & Brayton, "SAT-based complete don't-care
computation for network optimization"): random simulation proposes
don't-care candidates, and SAT queries confirm them exactly:

* a fanin pattern never observed under simulation is an **SDC candidate**;
  a SAT query for "some PI vector produces this pattern" refutes or
  confirms it;
* a pattern whose observed vectors never propagated a node flip is an
  **ODC candidate**; a miter query ("some PI vector produces the pattern
  *and* flipping the node changes a PO") decides it exactly;
* a pattern for which simulation already shows an observable flip is a
  confirmed *care* with no query at all — simulation refutes the
  candidate before SAT sees it.

:class:`CompleteFlexibilityOracle` runs this for every node of a network
against **one shared CNF encoding** (sound to reuse across queries since
the solver keeps assumption-derived learned clauses conditional — see
:mod:`repro.sat.solver`), with a per-node query budget and a per-query
conflict budget; :func:`reassign_complete_dcs` is the full rewrite pass
behind the ``complete_dc`` pipeline stage, falling back to the
window-limited extractor (:func:`repro.synth.odc.node_flexibility` with
``window_levels``) when a node exhausts its budgets.

The result is the same local :class:`~repro.core.spec.FunctionSpec` that
the exhaustive path produces, computed without ever enumerating ``2^n``
vectors.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.ranking import ranking_assignment
from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON
from ..espresso.cube import Cover
from ..espresso.minimize import espresso
from ..obs import metrics as obs_metrics
from ..obs import span
from ..sat.encode import CnfBuilder, encode_network, networks_equivalent
from ..sim import packed as pk
from ..sim.incremental import IncrementalNetworkSim
from .network import LogicNetwork
from .odc import MAX_EXHAUSTIVE_FANINS, internal_error_rate, node_flexibility

__all__ = [
    "node_flexibility_sat",
    "CompleteFlexibilityOracle",
    "CompleteDcReport",
    "reassign_complete_dcs",
]

_FULL_SIM_MAX_PIS = 20
"""PI count up to which the pass keeps a full-space exhaustive simulator
for the per-rewrite output self-check and the window-limited baseline;
beyond it only the final miter check and the SAT path remain."""


def _encode_flip_copy(
    builder: CnfBuilder,
    network: LogicNetwork,
    node_name: str,
    prefix: str = "F_",
) -> None:
    """Encode a second copy of the fanout cone of *node_name* with the
    node's value complemented (*prefix*); PIs and cone-external signals
    are shared with the primary (``N_``-prefixed) encoding."""
    fanouts = network.fanouts()
    cone: set[str] = set()
    stack = [node_name]
    while stack:
        current = stack.pop()
        for reader in fanouts.get(current, []):
            if reader not in cone:
                cone.add(reader)
                stack.append(reader)

    def primary_name(signal: str) -> str:
        return signal if signal in network.primary_inputs else "N_" + signal

    def flipped_name(signal: str) -> str:
        if signal == node_name or signal in cone:
            return prefix + signal
        return primary_name(signal)

    # The flipped node value: F_node <-> not N_node.
    original = builder.var("N_" + node_name)
    flipped = builder.var(prefix + node_name)
    builder.add_clause([original, flipped])
    builder.add_clause([-original, -flipped])
    for name in network.topological_order():
        if name not in cone:
            continue
        node = network.nodes[name]
        builder.encode_sop(
            flipped_name(name), [flipped_name(f) for f in node.fanins], node.cover
        )


class CompleteFlexibilityOracle:
    """Per-node complete flexibility via one shared incremental encoding.

    One ``N_``-prefixed CNF copy of the network is built lazily and
    shared by every node's queries; each queried node adds a private
    flipped cone (``F<i>_`` prefix) plus a PO-difference indicator to the
    same solver, so learned clauses accumulate across nodes.  A random
    packed simulation (also shared) pre-classifies patterns so SAT only
    sees genuine candidates.

    After a node's cover is rewritten, call :meth:`notify_rewrite` — the
    encoding is discarded and rebuilt on the next query while the random
    simulation is refreshed incrementally.

    Attributes:
        network: the analysed network (rewrites allowed between queries
            when announced via :meth:`notify_rewrite`).
        query_budget: max SAT queries per node (``None`` = unlimited);
            exhausting it makes :meth:`node_flexibility` return ``None``.
        conflict_budget: per-query solver conflict cap (``None`` =
            unlimited); an inconclusive query also returns ``None``.
    """

    def __init__(
        self,
        network: LogicNetwork,
        *,
        simulation_vectors: int = 256,
        rng: np.random.Generator | None = None,
        query_budget: int | None = None,
        conflict_budget: int | None = None,
    ) -> None:
        self.network = network
        self.simulation_vectors = simulation_vectors
        self.query_budget = query_budget
        self.conflict_budget = conflict_budget
        rng = rng or np.random.default_rng(0)
        vectors = (
            rng.random((simulation_vectors, len(network.primary_inputs))) < 0.5
        )
        self.sim = IncrementalNetworkSim(
            network, pk.pack_matrix(vectors), simulation_vectors
        )
        self._builder: CnfBuilder | None = None
        self._flip_prefix: dict[str, str] = {}
        self._any_diff: dict[str, int] = {}
        self._flip_count = 0

    # ------------------------------------------------------------- lifecycle

    def notify_rewrite(self, node_name: str) -> None:
        """Announce that *node_name*'s cover changed: drop the stale CNF
        encoding and refresh the node's simulation cone in place."""
        self._builder = None
        self._flip_prefix.clear()
        self._any_diff.clear()
        self.sim.recompute(node_name)

    # -------------------------------------------------------------- encoding

    def _ensure_builder(self) -> CnfBuilder:
        if self._builder is None:
            self._builder = CnfBuilder()
            encode_network(self._builder, self.network, prefix="N_")
        return self._builder

    def _signal_var(self, builder: CnfBuilder, signal: str) -> int:
        if signal in self.network.primary_inputs:
            return builder.var(signal)
        return builder.var("N_" + signal)

    def _ensure_flip(self, node_name: str) -> int:
        """Encode the node's flipped cone (once) -> the any-PO-differs var."""
        cached = self._any_diff.get(node_name)
        if cached is not None:
            return cached
        builder = self._ensure_builder()
        self._flip_count += 1
        prefix = f"F{self._flip_count}_"
        self._flip_prefix[node_name] = prefix
        _encode_flip_copy(builder, self.network, node_name, prefix=prefix)

        fanouts = self.network.fanouts()
        cone: set[str] = {node_name}
        stack = [node_name]
        while stack:
            current = stack.pop()
            for reader in fanouts.get(current, []):
                if reader not in cone:
                    cone.add(reader)
                    stack.append(reader)
        difference_vars = []
        for signal in self.network.outputs.values():
            if signal not in cone:
                continue  # this PO cannot change; skip
            left = self._signal_var(builder, signal)
            right = builder.var(prefix + signal)
            diff = builder.solver.new_var()
            builder.encode_xor(diff, left, right)
            difference_vars.append(diff)
        any_diff = builder.solver.new_var()
        builder.encode_or(any_diff, difference_vars)
        self._any_diff[node_name] = any_diff
        return any_diff

    # --------------------------------------------------------------- queries

    def _solve(self, assumptions) -> bool | None:
        obs_metrics.counter("sat.queries").inc()
        sat, _ = self._ensure_builder().solver.solve(
            assumptions, max_conflicts=self.conflict_budget
        )
        return sat

    def node_flexibility(self, node_name: str) -> FunctionSpec | None:
        """The node's complete local flexibility, or ``None`` on budget
        exhaustion (callers fall back to a window-limited extraction).

        Raises:
            ValueError: for nodes wider than
                :data:`~repro.synth.odc.MAX_EXHAUSTIVE_FANINS`.
        """
        node = self.network.nodes[node_name]
        k = len(node.fanins)
        if k > MAX_EXHAUSTIVE_FANINS:
            raise ValueError(
                f"node {node_name!r} has {k} fanins; local flexibility "
                f"enumerates 2^k patterns and is capped at "
                f"{MAX_EXHAUSTIVE_FANINS} fanins"
            )

        # --- Simulation phase: observed patterns and sim-proven cares.
        masks = pk.pattern_masks(
            [self.sim.values[fanin] for fanin in node.fanins],
            self.simulation_vectors,
        )
        observed = np.any(masks != 0, axis=1)
        flip_diff = self.sim.flip_difference(node_name)
        sim_care = np.any(masks & flip_diff, axis=1)

        # --- SAT phase: shared encoding, assumptions per pattern query.
        builder = self._ensure_builder()
        any_diff = self._ensure_flip(node_name)
        queries_used = 0

        local_table = node.cover.evaluate()
        phases = np.full(1 << k, DC, dtype=np.uint8)
        for local_pattern in range(1 << k):
            if sim_care[local_pattern]:
                # Simulation exhibited an observable flip: the DC
                # candidate is refuted without touching the solver.
                phases[local_pattern] = (
                    ON if local_table[local_pattern] else OFF
                )
                continue
            pattern_assumptions = []
            for position, fanin in enumerate(node.fanins):
                variable = self._signal_var(builder, fanin)
                bit = (local_pattern >> position) & 1
                pattern_assumptions.append(variable if bit else -variable)
            if not observed[local_pattern]:
                # SDC candidate: is the pattern reachable at all?
                if (
                    self.query_budget is not None
                    and queries_used >= self.query_budget
                ):
                    obs_metrics.counter("sat.fallbacks").inc()
                    return None
                queries_used += 1
                reachable = self._solve(pattern_assumptions)
                if reachable is None:
                    obs_metrics.counter("sat.fallbacks").inc()
                    return None
                if not reachable:
                    obs_metrics.counter("sat.confirmations").inc()
                    continue  # confirmed SDC
                obs_metrics.counter("sat.refutations").inc()
            # Reachable: is the node observable under this pattern?
            if (
                self.query_budget is not None
                and queries_used >= self.query_budget
            ):
                obs_metrics.counter("sat.fallbacks").inc()
                return None
            queries_used += 1
            observable = self._solve(pattern_assumptions + [any_diff])
            if observable is None:
                obs_metrics.counter("sat.fallbacks").inc()
                return None
            if not observable:
                obs_metrics.counter("sat.confirmations").inc()
                continue  # confirmed ODC
            obs_metrics.counter("sat.refutations").inc()
            phases[local_pattern] = ON if local_table[local_pattern] else OFF
        return FunctionSpec(
            phases[None, :],
            name=f"{node_name}/local-sat",
            input_names=tuple(node.fanins),
            output_names=(node_name,),
        )


def node_flexibility_sat(
    network: LogicNetwork,
    node_name: str,
    *,
    simulation_vectors: int = 256,
    rng: np.random.Generator | None = None,
) -> FunctionSpec:
    """The node's local flexibility, computed by simulation + SAT.

    Produces the same single-output spec over the node's fanins as
    :func:`repro.synth.odc.node_flexibility` (without external DCs), but
    scales to networks whose primary-input space cannot be enumerated.
    One-shot convenience front-end for
    :class:`CompleteFlexibilityOracle` (unbudgeted, so never ``None``);
    sweeping many nodes through one oracle instance amortises the
    network encoding and the learned clauses.

    Args:
        network: the network.
        node_name: node to analyse (must have few enough fanins that its
            ``2^k`` local pattern space is enumerable).
        simulation_vectors: random vectors used to pre-classify patterns.
        rng: random generator for the simulation phase.

    Raises:
        KeyError: for unknown node names.
        ValueError: for nodes wider than
            :data:`~repro.synth.odc.MAX_EXHAUSTIVE_FANINS`.
    """
    oracle = CompleteFlexibilityOracle(
        network, simulation_vectors=simulation_vectors, rng=rng
    )
    spec = oracle.node_flexibility(node_name)
    assert spec is not None  # unbudgeted oracles always conclude
    return spec


@dataclass(frozen=True)
class CompleteDcReport:
    """Result of a SAT-complete internal-DC reassignment pass.

    Attributes:
        nodes_considered: nodes examined (wide nodes excluded).
        nodes_changed: nodes whose cover was rebuilt.
        dc_entries_assigned: local DC minterms decided for reliability.
        complete_dc_minterms: DC minterms confirmed by the complete
            extractor, totalled over the examined nodes.
        window_dc_minterms: DC minterms the window-limited baseline finds
            on the same nodes (0 when no baseline simulator fits).
        dc_delta: ``complete_dc_minterms - window_dc_minterms`` (the
            flexibility the SAT stage adds over the window extractor).
        sat_fallback_nodes: nodes that exhausted their budgets and used
            the window-limited extraction instead.
        error_rate_before / error_rate_after: internal error rates
            (``nan`` when the PI space is too large to simulate).
    """

    nodes_considered: int
    nodes_changed: int
    dc_entries_assigned: int
    complete_dc_minterms: int
    window_dc_minterms: int
    dc_delta: int
    sat_fallback_nodes: int
    error_rate_before: float
    error_rate_after: float


def reassign_complete_dcs(
    network: LogicNetwork,
    *,
    policy: str = "cfactor",
    threshold: float = DEFAULT_THRESHOLD,
    fraction: float = 1.0,
    max_fanins: int = 10,
    simulation_vectors: int = 256,
    query_budget: int | None = 256,
    conflict_budget: int | None = 10_000,
    window_levels: int = 2,
    rng: np.random.Generator | None = None,
) -> CompleteDcReport:
    """Reassign every node's *complete* internal DCs for reliability.

    The SAT-backed sibling of
    :func:`repro.synth.odc.reassign_internal_dcs` and the engine of the
    ``complete_dc`` pipeline stage: per node, simulation proposes DC
    candidates, shared-solver SAT queries confirm them exactly, the
    chosen policy assigns the confirmed flexibility, and ESPRESSO
    rebuilds the cover.  Nodes are processed one at a time in
    topological order and the oracle re-synchronised after each rewrite,
    so later nodes see flexibilities consistent with earlier decisions.

    A node that exhausts *query_budget* or *conflict_budget* falls back
    to the window-limited extractor (depth *window_levels*) when the PI
    space is small enough to simulate, else it is left untouched.  The
    same window extraction also provides the per-node baseline DC count
    recorded in the report and the ``complete_dc.*`` counters.

    Primary outputs are verified unchanged after every rewrite (packed
    compare when the PI space is enumerable) and once more at the end
    with a SAT miter against a pristine copy.

    Args:
        network: network to rewrite (mutated).
        policy: ``"cfactor"`` (Fig. 7) or ``"ranking"`` (Fig. 3).
        threshold: LC^f threshold for the cfactor policy.
        fraction: fraction of the ranked list for the ranking policy.
        max_fanins: skip (with ``complete_dc.wide_nodes_skipped``) nodes
            with more fanins than this.
        simulation_vectors: random vectors for candidate proposal.
        query_budget: max SAT queries per node (``None`` = unlimited).
        conflict_budget: per-query conflict cap (``None`` = unlimited).
        window_levels: fanout-window depth of the fallback extractor.
        rng: random generator for the simulation phase.

    Raises:
        ValueError: on unknown policies, or if a rewrite changes the
            primary outputs (which would indicate an ODC or solver bug).
    """
    if policy not in ("cfactor", "ranking"):
        raise ValueError(f"unknown policy {policy!r}")
    pristine = copy.deepcopy(network)
    full_sim: IncrementalNetworkSim | None = None
    reference = None
    if len(network.primary_inputs) <= _FULL_SIM_MAX_PIS:
        full_sim = IncrementalNetworkSim(network)
        reference = full_sim.output_words().copy()
    before = (
        internal_error_rate(network, sim=full_sim)
        if full_sim is not None
        else float("nan")
    )
    oracle = CompleteFlexibilityOracle(
        network,
        simulation_vectors=simulation_vectors,
        rng=rng,
        query_budget=query_budget,
        conflict_budget=conflict_budget,
    )
    considered = 0
    changed = 0
    assigned_total = 0
    complete_minterms = 0
    window_minterms = 0
    fallback_nodes = 0
    with span(
        "flexibility.reassign_complete",
        nodes=len(network.nodes),
        policy=policy,
    ):
        for name in list(network.topological_order()):
            node = network.nodes[name]
            if len(node.fanins) > max_fanins:
                obs_metrics.counter("complete_dc.wide_nodes_skipped").inc()
                continue
            considered += 1
            local = oracle.node_flexibility(name)
            if local is None:
                fallback_nodes += 1
                if full_sim is None:
                    continue  # no sound fallback without full simulation
                local = node_flexibility(
                    network, name, sim=full_sim, window_levels=window_levels
                )
            local_dcs = int(np.count_nonzero(local.phases == DC))
            complete_minterms += local_dcs
            if full_sim is not None:
                window_local = node_flexibility(
                    network, name, sim=full_sim, window_levels=window_levels
                )
                window_minterms += int(
                    np.count_nonzero(window_local.phases == DC)
                )
            if not local_dcs:
                continue
            if policy == "cfactor":
                assignment = cfactor_assignment(local, threshold)
            else:
                assignment = ranking_assignment(local, fraction)
            assigned = assignment.apply(local) if len(assignment) else local
            on_cover = Cover.from_minterms(len(node.fanins), assigned.on_set(0))
            dc_cover = Cover.from_minterms(len(node.fanins), assigned.dc_set(0))
            node.cover = espresso(on_cover, dc_cover)
            changed += 1
            assigned_total += len(assignment)
            oracle.notify_rewrite(name)
            if full_sim is not None:
                full_sim.recompute(name)
                if not bool(np.array_equal(full_sim.output_words(), reference)):
                    raise ValueError(
                        f"rewriting node {name!r} changed the primary outputs"
                    )
        if not networks_equivalent(pristine, network):
            raise ValueError(
                "complete-DC reassignment changed the primary outputs "
                "(SAT miter check)"
            )
        after = (
            internal_error_rate(network, sim=full_sim)
            if full_sim is not None
            else float("nan")
        )
    delta = complete_minterms - window_minterms
    obs_metrics.counter("complete_dc.nodes").inc(considered)
    obs_metrics.counter("complete_dc.nodes_changed").inc(changed)
    obs_metrics.counter("complete_dc.dc_minterms").inc(complete_minterms)
    obs_metrics.counter("complete_dc.window_dc_minterms").inc(window_minterms)
    obs_metrics.counter("complete_dc.dc_delta").inc(delta)
    obs_metrics.counter("complete_dc.fallback_nodes").inc(fallback_nodes)
    return CompleteDcReport(
        nodes_considered=considered,
        nodes_changed=changed,
        dc_entries_assigned=assigned_total,
        complete_dc_minterms=complete_minterms,
        window_dc_minterms=window_minterms,
        dc_delta=delta,
        sat_fallback_nodes=fallback_nodes,
        error_rate_before=before,
        error_rate_after=after,
    )
