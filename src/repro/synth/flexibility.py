"""Simulation + SAT flexibility extraction (the paper's ref. [16] approach).

:mod:`repro.synth.odc` computes node flexibilities exhaustively over the
primary-input space — exact, but limited to ~20 inputs.  This module
implements the scalable alternative the paper cites (Mishchenko et al.,
"Using simulation and satisfiability to compute flexibilities in Boolean
networks"): random simulation proposes don't-care candidates, and SAT
queries confirm them exactly:

* a fanin pattern never observed under simulation is an **SDC candidate**;
  a SAT query for "some PI vector produces this pattern" refutes or
  confirms it;
* a pattern whose observed vectors never propagated a node flip is an
  **ODC candidate**; a miter query ("some PI vector produces the pattern
  *and* flipping the node changes a PO") decides it exactly.

The result is the same local :class:`~repro.core.spec.FunctionSpec` that
the exhaustive path produces, computed without ever enumerating ``2^n``
vectors.
"""

from __future__ import annotations

import numpy as np

from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON
from ..sat.encode import CnfBuilder, encode_network
from ..sim import engine as sim_engine
from ..sim import packed as sim_packed
from .network import LogicNetwork

__all__ = ["node_flexibility_sat"]


def _encode_flip_copy(
    builder: CnfBuilder, network: LogicNetwork, node_name: str
) -> None:
    """Encode a second copy of the fanout cone of *node_name* with the
    node's value complemented (prefix ``F_``); PIs and cone-external
    signals are shared with the primary (``N_``-prefixed) encoding."""
    fanouts = network.fanouts()
    cone: set[str] = set()
    stack = [node_name]
    while stack:
        current = stack.pop()
        for reader in fanouts.get(current, []):
            if reader not in cone:
                cone.add(reader)
                stack.append(reader)

    def primary_name(signal: str) -> str:
        return signal if signal in network.primary_inputs else "N_" + signal

    def flipped_name(signal: str) -> str:
        if signal == node_name or signal in cone:
            return "F_" + signal
        return primary_name(signal)

    # The flipped node value: F_node <-> not N_node.
    original = builder.var("N_" + node_name)
    flipped = builder.var("F_" + node_name)
    builder.add_clause([original, flipped])
    builder.add_clause([-original, -flipped])
    for name in network.topological_order():
        if name not in cone:
            continue
        node = network.nodes[name]
        builder.encode_sop(
            flipped_name(name), [flipped_name(f) for f in node.fanins], node.cover
        )


def node_flexibility_sat(
    network: LogicNetwork,
    node_name: str,
    *,
    simulation_vectors: int = 256,
    rng: np.random.Generator | None = None,
) -> FunctionSpec:
    """The node's local flexibility, computed by simulation + SAT.

    Produces the same single-output spec over the node's fanins as
    :func:`repro.synth.odc.node_flexibility` (without external DCs), but
    scales to networks whose primary-input space cannot be enumerated.

    Args:
        network: the network.
        node_name: node to analyse (must have few enough fanins that its
            ``2^k`` local pattern space is enumerable).
        simulation_vectors: random vectors used to pre-classify patterns.
        rng: random generator for the simulation phase.

    Raises:
        KeyError: for unknown node names.
    """
    node = network.nodes[node_name]
    k = len(node.fanins)
    rng = rng or np.random.default_rng(0)

    # --- Simulation phase (packed): observe which fanin patterns occur.
    num_pis = len(network.primary_inputs)
    vectors = rng.random((simulation_vectors, num_pis)) < 0.5
    values = sim_engine.network_values(
        network, sim_packed.pack_matrix(vectors), simulation_vectors
    )
    masks = sim_packed.pattern_masks(
        [values[fanin] for fanin in node.fanins], simulation_vectors
    )
    observed = np.any(masks != 0, axis=1)

    # --- SAT phase: one base encoding, assumptions per pattern query.
    builder = CnfBuilder()
    encode_network(builder, network, prefix="N_")
    _encode_flip_copy(builder, network, node_name)

    def signal_var(signal: str, prefix: str) -> int:
        if signal in network.primary_inputs:
            return builder.var(signal)
        return builder.var(prefix + signal)

    # Difference indicator over the primary outputs.
    fanouts = network.fanouts()
    cone: set[str] = {node_name}
    stack = [node_name]
    while stack:
        current = stack.pop()
        for reader in fanouts.get(current, []):
            if reader not in cone:
                cone.add(reader)
                stack.append(reader)
    difference_vars = []
    for out_name, signal in network.outputs.items():
        if signal not in cone:
            continue  # this PO cannot change; skip
        left = signal_var(signal, "N_")
        right = builder.var("F_" + signal)
        diff = builder.solver.new_var()
        builder.encode_xor(diff, left, right)
        difference_vars.append(diff)
    any_diff = builder.solver.new_var()
    for diff in difference_vars:
        builder.add_clause([-diff, any_diff])
    builder.add_clause([-any_diff] + difference_vars if difference_vars else [-any_diff])

    local_table = node.cover.evaluate()
    phases = np.full(1 << k, DC, dtype=np.uint8)
    for local_pattern in range(1 << k):
        pattern_assumptions = []
        for position, fanin in enumerate(node.fanins):
            variable = signal_var(fanin, "N_")
            bit = (local_pattern >> position) & 1
            pattern_assumptions.append(variable if bit else -variable)
        if not observed[local_pattern]:
            # SDC candidate: is the pattern reachable at all?
            reachable, _ = builder.solver.solve(pattern_assumptions)
            if not reachable:
                continue  # confirmed SDC
        # Reachable: is the node observable under this pattern?
        observable, _ = builder.solver.solve(pattern_assumptions + [any_diff])
        if not observable:
            continue  # confirmed ODC
        phases[local_pattern] = ON if local_table[local_pattern] else OFF
    return FunctionSpec(
        phases[None, :],
        name=f"{node_name}/local-sat",
        input_names=tuple(node.fanins),
        output_names=(node_name,),
    )
