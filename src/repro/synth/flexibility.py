"""Simulation + SAT flexibility extraction (the paper's ref. [16] approach).

:mod:`repro.synth.odc` computes node flexibilities exhaustively over the
primary-input space — exact, but limited to ~20 inputs.  This module
implements the scalable alternative the paper cites (Mishchenko et al.,
"Using simulation and satisfiability to compute flexibilities in Boolean
networks"; Mishchenko & Brayton, "SAT-based complete don't-care
computation for network optimization"): random simulation proposes
don't-care candidates, and SAT queries confirm them exactly:

* a fanin pattern never observed under simulation is an **SDC candidate**;
  a SAT query for "some PI vector produces this pattern" refutes or
  confirms it;
* a pattern whose observed vectors never propagated a node flip is an
  **ODC candidate**; a miter query ("some PI vector produces the pattern
  *and* flipping the node changes a PO") decides it exactly;
* a pattern for which simulation already shows an observable flip is a
  confirmed *care* with no query at all — simulation refutes the
  candidate before SAT sees it.

The engine behind :class:`CompleteFlexibilityOracle` is batched and
incremental:

**Query batching.**  Unconfirmed candidates are grouped and a fresh
one-hot selector (``s -> OR(cube guards)``) asks the solver whether *any*
candidate in the batch is reachable (or observable) with a single
``solve([s])``.  UNSAT confirms the whole batch at once; a SAT model
names exactly one refuted candidate (the fanin values in the model),
which is removed before the shrunken batch is re-queried.  Stale
selectors are simply never assumed again.

**Counterexample recycling.**  Every refuting model is a concrete PI
vector; it is recorded and — at the next :meth:`flush_recycled` — packed
into the shared simulation, so sibling candidates across *all* remaining
nodes are pruned by simulation instead of reaching the solver.

**Encoding and cone caching.**  The network CNF persists across
rewrites: :meth:`notify_rewrite` bumps a version on every signal in the
rewritten node's fanout cone and re-encodes only those covers under the
new versioned names, leaving untouched logic (and all learned clauses)
in place.  Per-node flip-cone miters are memoized keyed by their
dependency fingerprint — the cone signals plus its side inputs — and
evicted only when a rewrite dirties a dependency.

**Unchanged results.**  Batching, recycling and caching change *how
fast* answers arrive, never *which* answers: pattern statuses are exact
semantic facts, and the per-node query budget is accounted the way the
original sequential engine would have charged it (one query per
unobserved-in-the-base-patterns candidate, plus one observability query
per semantically reachable candidate, classified against the **base**
pattern set only).  A node therefore falls back to the window-limited
extractor on exactly the same inputs regardless of batch size, recycled
patterns, or execution schedule — which is what keeps serial and
parallel runs of :func:`reassign_complete_dcs` bit-identical.

:func:`reassign_complete_dcs` partitions the topological order into
contiguous *independent groups* (no member's fanout cone intersects
another member's support), confirms a group's flexibilities against the
group-start network state — serially, or fanned out across
:mod:`repro.perf.pool` workers with work stealing — and applies the
rewrites sequentially in topological order, so the schedule observed by
every node is the same in both modes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.assignment import Assignment
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.ranking import complete_assignment, ranking_assignment
from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON
from ..espresso.cube import Cover
from ..espresso.minimize import espresso
from ..obs import metrics as obs_metrics
from ..obs import span
from ..sat.encode import CnfBuilder, networks_equivalent
from ..sim import packed as pk
from ..sim.incremental import IncrementalNetworkSim
from .network import LogicNetwork
from .odc import MAX_EXHAUSTIVE_FANINS, internal_error_rate, node_flexibility

__all__ = [
    "node_flexibility_sat",
    "CompleteFlexibilityOracle",
    "CompleteDcReport",
    "plan_node_groups",
    "reassign_complete_dcs",
]

_FULL_SIM_MAX_PIS = 20
"""PI count up to which the pass keeps a full-space exhaustive simulator
for the per-rewrite output self-check and the window-limited baseline;
beyond it only the final miter check and the SAT path remain."""

DEFAULT_BATCH_SIZE = 16
"""Candidates per one-hot selector batch.  Large enough that an UNSAT
answer confirms a pile of candidates in one solve, small enough that the
final complete-search UNSAT proof per batch stays shallow (the measured
sweet spot on the benchmark circuits; 32 starts losing to the deeper
selector refutations)."""

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

_GC_FACTOR = 1.3
"""Compaction threshold: the persistent encoding is rebuilt from scratch
once its clause count exceeds this multiple of a fresh encoding's (see
:meth:`CompleteFlexibilityOracle._maybe_compact`)."""


class _BudgetExhausted(Exception):
    """Internal: a node hit its (legacy-accounted) query budget or an
    inconclusive solve; the caller falls back to the window extractor."""


class CompleteFlexibilityOracle:
    """Per-node complete flexibility via one shared incremental encoding.

    One versioned CNF copy of the network is built lazily and shared by
    every node's queries; each queried node adds a private flipped cone
    (``F<i>_`` prefix) plus a PO-difference indicator to the same solver,
    so learned clauses accumulate across nodes *and across rewrites*.  A
    random packed simulation (also shared) pre-classifies patterns so SAT
    only sees genuine candidates.

    After a node's cover is rewritten, call :meth:`notify_rewrite` — the
    dirtied cone is re-encoded under fresh signal versions (or, with
    ``reuse_encodings=False``, the whole encoding is discarded) and the
    simulation refreshed incrementally.

    Attributes:
        network: the analysed network (rewrites allowed between queries
            when announced via :meth:`notify_rewrite`).
        query_budget: max SAT queries per node under the legacy
            sequential accounting (``None`` = unlimited); exhausting it
            makes :meth:`node_flexibility` return ``None``.
        conflict_budget: per-solve conflict cap (``None`` = unlimited);
            an inconclusive solve also returns ``None``.
        batch_size: candidates per one-hot batch; ``<= 1`` issues one
            plain cube-assumption query per candidate (the pre-batching
            engine, kept as the benchmark baseline and fuzz oracle).
    """

    def __init__(
        self,
        network: LogicNetwork,
        *,
        simulation_vectors: int = 256,
        rng: np.random.Generator | None = None,
        query_budget: int | None = None,
        conflict_budget: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        reuse_encodings: bool = True,
        recycle_counterexamples: bool = True,
        vectors: np.ndarray | None = None,
        base_vectors: int | None = None,
    ) -> None:
        self.network = network
        self.query_budget = query_budget
        self.conflict_budget = conflict_budget
        self.batch_size = batch_size
        self.reuse_encodings = reuse_encodings
        self.recycle_counterexamples = recycle_counterexamples
        if vectors is None:
            rng = rng or np.random.default_rng(0)
            vectors = (
                rng.random((simulation_vectors, len(network.primary_inputs)))
                < 0.5
            )
            base_vectors = simulation_vectors
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=bool))
        self._vectors = vectors
        self.base_vectors = (
            vectors.shape[0] if base_vectors is None else base_vectors
        )
        self.simulation_vectors = simulation_vectors
        self._vector_keys = {row.tobytes() for row in vectors}
        self._pending: list[np.ndarray] = []
        self.sim = IncrementalNetworkSim(
            network, pk.pack_matrix(vectors), vectors.shape[0]
        )
        self._base_mask = self._make_base_mask(vectors.shape[0])
        self._builder: CnfBuilder | None = None
        self._version: dict[str, int] = {}
        self._any_diff: dict[str, int] = {}
        self._flip_deps: dict[str, frozenset[str]] = {}
        self._flip_count = 0
        self._restarts_seen = 0
        self._fresh_clauses = 0

    # ---------------------------------------------------------------- vectors

    @property
    def num_vectors(self) -> int:
        """Installed simulation vectors (base + flushed counterexamples)."""
        return self._vectors.shape[0]

    @property
    def vectors(self) -> np.ndarray:
        """The installed PI pattern matrix (bool, vectors x inputs)."""
        return self._vectors

    def _make_base_mask(self, total: int) -> np.ndarray:
        """Word mask selecting the first ``base_vectors`` vector bits."""
        mask = np.zeros(pk.num_words(total), dtype=np.uint64)
        full, rem = divmod(self.base_vectors, 64)
        mask[:full] = _ALL_ONES
        if rem and full < mask.shape[0]:
            mask[full] = np.uint64((1 << rem) - 1)
        return mask

    def record_counterexamples(self, rows) -> int:
        """Queue refuting PI vectors for the next :meth:`flush_recycled`.

        Deduplicated against installed and already-pending vectors; used
        both internally (every refuting model) and by the parallel driver
        to merge counterexamples discovered in workers.
        """
        added = 0
        for row in rows:
            row = np.ascontiguousarray(np.asarray(row, dtype=bool))
            key = row.tobytes()
            if key in self._vector_keys:
                continue
            self._vector_keys.add(key)
            self._pending.append(row)
            added += 1
        if added:
            obs_metrics.counter("sat.cex_recycled").inc(added)
        return added

    def drain_counterexamples(self) -> list[np.ndarray]:
        """Remove and return the pending counterexample rows (the worker
        side of parallel recycling; keys stay so re-adds dedupe)."""
        pending, self._pending = self._pending, []
        return pending

    def flush_recycled(self) -> int:
        """Install pending counterexamples into the shared simulation.

        Deliberately *not* automatic per refutation: the driver flushes at
        group boundaries so serial and parallel schedules present every
        node with the same simulation (results are invariant to the extra
        patterns either way — see the module docstring — but keeping the
        schedules aligned keeps performance comparable too).
        """
        if not self._pending:
            return 0
        added = len(self._pending)
        self._vectors = np.ascontiguousarray(
            np.vstack([self._vectors, np.array(self._pending, dtype=bool)])
        )
        self._pending = []
        self.sim = IncrementalNetworkSim(
            self.network, pk.pack_matrix(self._vectors), self._vectors.shape[0]
        )
        self._base_mask = self._make_base_mask(self._vectors.shape[0])
        obs_metrics.counter("sat.cex_installed").inc(added)
        return added

    # ------------------------------------------------------------- lifecycle

    def notify_rewrite(self, node_name: str) -> None:
        """Announce that *node_name*'s cover changed.

        With ``reuse_encodings`` the rewritten fanout cone is re-encoded
        under fresh signal versions — untouched logic and all learned
        clauses persist — and only flip-cone miters whose dependency
        fingerprint includes a dirtied signal are evicted.  Otherwise the
        whole encoding is discarded (the pre-caching engine).  The node's
        simulation cone is refreshed in place either way.
        """
        self.sim.recompute(node_name)
        if self._builder is None:
            return
        if not self.reuse_encodings:
            self._builder = None
            self._any_diff.clear()
            self._flip_deps.clear()
            return
        dirty = self.network.fanout_cone(node_name)
        dirty_set = set(dirty)
        for signal in dirty:
            self._version[signal] = self._version.get(signal, 0) + 1
        builder = self._builder
        for signal in dirty:  # already topologically ordered
            node = self.network.nodes[signal]
            builder.encode_sop(
                self._signal_name(signal),
                [self._signal_name(f) for f in node.fanins],
                node.cover,
            )
        obs_metrics.counter("sat.reencoded_nodes").inc(len(dirty))
        for cached in list(self._any_diff):
            if self._flip_deps[cached] & dirty_set:
                del self._any_diff[cached]
                del self._flip_deps[cached]
                obs_metrics.counter("sat.cone_cache_evictions").inc()

    # -------------------------------------------------------------- encoding

    def _signal_name(self, signal: str) -> str:
        if signal in self.network.primary_inputs:
            return signal
        version = self._version.get(signal, 0)
        return f"N_{signal}" if version == 0 else f"N_{signal}@{version}"

    def _ensure_builder(self) -> CnfBuilder:
        if self._builder is None:
            builder = CnfBuilder()
            self._version.clear()
            for name in self.network.topological_order():
                node = self.network.nodes[name]
                builder.encode_sop(
                    self._signal_name(name),
                    [self._signal_name(f) for f in node.fanins],
                    node.cover,
                )
            self._builder = builder
            self._fresh_clauses = len(builder.solver.clauses)
            self._restarts_seen = 0
        return self._builder

    def _maybe_compact(self) -> None:
        """Rebuild the encoding once accumulated garbage dominates it.

        The persistent CNF trades clause garbage (stale cone versions,
        retired flip copies, spent batch guards) for learned-clause and
        encoding reuse — but every satisfying assignment must still
        assign the garbage variables, so an unbounded pile would make
        each solve slower than the reuse saves.  When the clause count
        passes ``_GC_FACTOR`` times a fresh encoding's, drop everything
        and let the next query re-encode from scratch.  Only called
        between nodes: mid-node state (fanin variables, guards, miters)
        always refers to one builder generation.
        """
        if self._builder is None or not self.reuse_encodings:
            return
        if len(self._builder.solver.clauses) > _GC_FACTOR * max(
            self._fresh_clauses, 1
        ):
            self._builder = None
            self._any_diff.clear()
            self._flip_deps.clear()
            obs_metrics.counter("sat.encoding_compactions").inc()

    def _ensure_flip(self, node_name: str) -> int:
        """The node's any-PO-differs miter variable, memoized.

        The cache key is the dependency fingerprint of the flip cone —
        the cone signals plus every side input its covers read — kept
        implicitly: :meth:`notify_rewrite` evicts entries whose
        fingerprint gained a dirtied signal, so a present entry is always
        current.
        """
        cached = self._any_diff.get(node_name)
        if cached is not None:
            obs_metrics.counter("sat.cone_cache_hits").inc()
            return cached
        obs_metrics.counter("sat.cone_cache_misses").inc()
        builder = self._ensure_builder()
        cone = self.network.fanout_cone(node_name)  # includes node_name
        cone_set = set(cone)
        self._flip_count += 1
        prefix = f"F{self._flip_count}_"

        def flip_name(signal: str) -> str:
            if signal in cone_set:
                return prefix + signal
            return self._signal_name(signal)

        original = builder.var(self._signal_name(node_name))
        flipped = builder.var(prefix + node_name)
        builder.add_clause([original, flipped])
        builder.add_clause([-original, -flipped])
        deps = set(cone_set)
        for name in cone:
            if name == node_name:
                continue
            node = self.network.nodes[name]
            builder.encode_sop(
                flip_name(name), [flip_name(f) for f in node.fanins], node.cover
            )
            deps.update(
                f
                for f in node.fanins
                if f not in self.network.primary_inputs
            )
        difference_vars = []
        for signal in self.network.outputs.values():
            if signal not in cone_set:
                continue  # this PO cannot change; skip
            left = builder.var(self._signal_name(signal))
            right = builder.var(prefix + signal)
            diff = builder.solver.new_var()
            builder.encode_xor(diff, left, right)
            difference_vars.append(diff)
        any_diff = builder.solver.new_var()
        builder.encode_or(any_diff, difference_vars)
        self._any_diff[node_name] = any_diff
        self._flip_deps[node_name] = frozenset(deps)
        return any_diff

    # --------------------------------------------------------------- queries

    def _solve(self, assumptions) -> tuple[bool | None, dict[int, bool]]:
        solver = self._ensure_builder().solver
        obs_metrics.counter("sat.queries").inc()
        started = perf_counter()
        sat, model = solver.solve(
            assumptions, max_conflicts=self.conflict_budget
        )
        obs_metrics.counter("sat.solve_seconds").inc(perf_counter() - started)
        if solver.total_restarts != self._restarts_seen:
            obs_metrics.counter("sat.restarts").inc(
                solver.total_restarts - self._restarts_seen
            )
            self._restarts_seen = solver.total_restarts
        return sat, model

    def _model_row(self, builder: CnfBuilder, model: dict[int, bool]):
        """The refuting model's PI vector (unconstrained PIs read false)."""
        row = np.zeros(len(self.network.primary_inputs), dtype=bool)
        for position, pi in enumerate(self.network.primary_inputs):
            variable = builder.variable_of.get(pi)
            if variable is not None:
                row[position] = model.get(variable, False)
        return row

    def _cube_literals(self, fanin_vars, pattern: int) -> list[int]:
        return [
            var if (pattern >> j) & 1 else -var
            for j, var in enumerate(fanin_vars)
        ]

    def _resolve_candidates(
        self,
        patterns,
        fanin_vars,
        extra,
        guards: dict[int, int],
        charge_refutation=None,
    ) -> set[int]:
        """Decide every candidate cube: returns the refuted (SAT) ones.

        *extra* literals are assumed on every query (the observability
        ``any_diff``).  *charge_refutation* is invoked per refutation for
        the legacy budget accounting and may raise
        :class:`_BudgetExhausted`; an inconclusive solve raises it too.
        """
        builder = self._ensure_builder()
        refuted: set[int] = set()
        if self.batch_size <= 1:
            for pattern in patterns:
                sat, model = self._solve(
                    self._cube_literals(fanin_vars, pattern) + list(extra)
                )
                if sat is None:
                    raise _BudgetExhausted
                if sat:
                    refuted.add(pattern)
                    self._refuted(builder, model, pattern, charge_refutation)
            return refuted
        pending_all = list(patterns)
        for start in range(0, len(pending_all), self.batch_size):
            pending = pending_all[start:start + self.batch_size]
            while pending:
                for pattern in pending:
                    if pattern not in guards:
                        guards[pattern] = builder.encode_cube_guard(
                            self._cube_literals(fanin_vars, pattern)
                        )
                selector = builder.encode_selector(
                    [guards[pattern] for pattern in pending]
                )
                obs_metrics.counter("sat.batch_queries").inc()
                sat, model = self._solve(list(extra) + [selector])
                if sat is None:
                    raise _BudgetExhausted
                if not sat:
                    break  # the whole batch is confirmed at once
                pattern = 0
                for j, var in enumerate(fanin_vars):
                    if model.get(var, False):
                        pattern |= 1 << j
                if pattern not in pending:
                    raise AssertionError(
                        "batched model refutes no pending candidate"
                    )
                pending.remove(pattern)
                refuted.add(pattern)
                obs_metrics.counter("sat.batch_refutations").inc()
                self._refuted(builder, model, pattern, charge_refutation)
        return refuted

    def _refuted(self, builder, model, pattern, charge_refutation) -> None:
        if self.recycle_counterexamples:
            self.record_counterexamples([self._model_row(builder, model)])
        if charge_refutation is not None:
            charge_refutation(pattern)

    def node_flexibility(self, node_name: str) -> FunctionSpec | None:
        """The node's complete local flexibility, or ``None`` on budget
        exhaustion (callers fall back to a window-limited extraction).

        Raises:
            ValueError: for nodes wider than
                :data:`~repro.synth.odc.MAX_EXHAUSTIVE_FANINS`.
        """
        self._maybe_compact()
        node = self.network.nodes[node_name]
        k = len(node.fanins)
        if k > MAX_EXHAUSTIVE_FANINS:
            raise ValueError(
                f"node {node_name!r} has {k} fanins; local flexibility "
                f"enumerates 2^k patterns and is capped at "
                f"{MAX_EXHAUSTIVE_FANINS} fanins"
            )
        size = 1 << k

        # --- Simulation phase: observed patterns and sim-proven cares.
        # The *_any views include recycled counterexamples (they prune
        # solver work); the *_base views see only the base pattern set
        # and drive the legacy-equivalent budget accounting.
        masks = pk.pattern_masks(
            [self.sim.values[fanin] for fanin in node.fanins],
            self.num_vectors,
        )
        flip_diff = self.sim.flip_difference(node_name)
        care_masks = masks & flip_diff
        observed_any = np.any(masks != 0, axis=1)
        care_any = np.any(care_masks != 0, axis=1)
        observed_base = np.any(masks & self._base_mask, axis=1)
        care_base = np.any(care_masks & self._base_mask, axis=1)

        # Legacy charge — what the sequential single-query engine would
        # have spent: one query per non-base-care pattern (reachability if
        # base-unobserved, else observability), plus a second for every
        # base-unobserved pattern that turns out semantically reachable.
        # Reachability is known up front when a recycled vector witnesses
        # it; SDC refutations below add the rest as they are discovered.
        budget = self.query_budget
        charge = int(np.count_nonzero(~care_base))
        charge += int(np.count_nonzero(~observed_base & observed_any))

        def fallback() -> None:
            obs_metrics.counter("sat.fallbacks").inc()

        if budget is not None and charge > budget:
            fallback()  # decided before a single solve call
            return None

        builder = self._ensure_builder()
        fanin_vars = [
            builder.var(self._signal_name(fanin)) for fanin in node.fanins
        ]
        guards: dict[int, int] = {}

        def charge_reachable(_pattern: int) -> None:
            nonlocal charge
            charge += 1
            if budget is not None and charge > budget:
                raise _BudgetExhausted

        try:
            # --- SDC phase: is any never-observed pattern reachable?
            unknown = [p for p in range(size) if not observed_any[p]]
            reachable_extra = self._resolve_candidates(
                unknown, fanin_vars, (), guards,
                charge_refutation=charge_reachable,
            )
            # --- ODC phase: is any reachable pattern observable?
            odc_candidates = [
                p
                for p in range(size)
                if not care_any[p]
                and (observed_any[p] or p in reachable_extra)
            ]
            any_diff = (
                self._ensure_flip(node_name) if odc_candidates else None
            )
            observable_extra = self._resolve_candidates(
                odc_candidates, fanin_vars,
                (any_diff,) if any_diff is not None else (), guards,
            )
        except _BudgetExhausted:
            fallback()
            return None

        confirmed = (len(unknown) - len(reachable_extra)) + (
            len(odc_candidates) - len(observable_extra)
        )
        obs_metrics.counter("sat.confirmations").inc(confirmed)
        obs_metrics.counter("sat.refutations").inc(
            len(reachable_extra) + len(observable_extra)
        )

        local_table = node.cover.evaluate()
        phases = np.full(size, DC, dtype=np.uint8)
        for pattern in range(size):
            if care_any[pattern] or pattern in observable_extra:
                phases[pattern] = ON if local_table[pattern] else OFF
        return FunctionSpec(
            phases[None, :],
            name=f"{node_name}/local-sat",
            input_names=tuple(node.fanins),
            output_names=(node_name,),
        )


def node_flexibility_sat(
    network: LogicNetwork,
    node_name: str,
    *,
    simulation_vectors: int = 256,
    rng: np.random.Generator | None = None,
) -> FunctionSpec:
    """The node's local flexibility, computed by simulation + SAT.

    Produces the same single-output spec over the node's fanins as
    :func:`repro.synth.odc.node_flexibility` (without external DCs), but
    scales to networks whose primary-input space cannot be enumerated.
    One-shot convenience front-end for
    :class:`CompleteFlexibilityOracle` (unbudgeted, so never ``None``);
    sweeping many nodes through one oracle instance amortises the
    network encoding and the learned clauses.

    Args:
        network: the network.
        node_name: node to analyse (must have few enough fanins that its
            ``2^k`` local pattern space is enumerable).
        simulation_vectors: random vectors used to pre-classify patterns.
        rng: random generator for the simulation phase.

    Raises:
        KeyError: for unknown node names.
        ValueError: for nodes wider than
            :data:`~repro.synth.odc.MAX_EXHAUSTIVE_FANINS`.
    """
    oracle = CompleteFlexibilityOracle(
        network, simulation_vectors=simulation_vectors, rng=rng
    )
    spec = oracle.node_flexibility(node_name)
    assert spec is not None  # unbudgeted oracles always conclude
    return spec


# --------------------------------------------------------------- scheduling


def plan_node_groups(
    network: LogicNetwork, names: list[str]
) -> list[list[str]]:
    """Partition *names* (topologically ordered candidates) into
    independent waves whose group-at-a-time schedule provably matches
    the strictly sequential one.

    A node's flexibility is a pure function of the *global functions* of
    its support — the transitive fanin of its fanout cone, i.e. every
    signal its reachability and observability queries can read.  A
    rewrite of node *b* can only change the functions of signals in
    ``TFO(b)`` — and not even all of those: primary-output functions are
    invariant across the whole pass (every rewrite is verified
    output-preserving), so a PO-driving signal keeps its function no
    matter how often cones below it are rewritten.  The effective
    dependency is therefore

        ``b -> n  iff  b precedes n and (TFO(b) \\ PO-drivers)``
        ``intersects support(n)``

    Longest-path layering of that DAG yields the waves: every node lands
    one wave after the last rewrite that could influence it, so
    computing a whole wave's flexibilities against the wave-start
    network sees exactly the rewrites the sequential schedule would —
    and the rewrites themselves commute across waves for the same
    reason, making the apply order irrelevant to the final network.

    Unlike a contiguous split of the topological order, waves batch
    *distant* independent cones together, which is what gives the pool
    something to chew on in dense networks.
    """
    po_drivers = set(network.outputs.values())
    waves: list[list[str]] = []
    wave_of: dict[str, int] = {}
    perturbed: list[set[str]] = []  # changed-signal union per prior node
    names = list(names)
    for name in names:
        tfo = set(network.fanout_cone(name))
        support = network.fanin_support(tfo)
        wave = 0
        for earlier_name, changed in zip(names, perturbed):
            if changed & support:
                wave = max(wave, wave_of[earlier_name] + 1)
        wave_of[name] = wave
        perturbed.append(tfo - po_drivers)
        while len(waves) <= wave:
            waves.append([])
        waves[wave].append(name)
    return [wave for wave in waves if wave]


@dataclass(frozen=True)
class _GroupPayload:
    """Everything a pool worker needs to confirm one group's nodes:
    the group-start network snapshot, the installed pattern matrix, and
    the oracle parameters.  Shipped once per group via ``map(shared=)``
    and decoded once per worker."""

    network: LogicNetwork
    vectors: np.ndarray
    base_vectors: int
    query_budget: int | None
    conflict_budget: int | None
    batch_size: int
    recycle_counterexamples: bool


def _support_subnetwork(
    network: LogicNetwork, name: str
) -> tuple[LogicNetwork, list[int]]:
    """The induced subnetwork a node's flexibility queries can read.

    Keeps exactly ``support(TFO(name))`` — the node's fanout cone, every
    signal transitively feeding it, and the primary outputs the cone
    drives.  The node's reachability, observability, simulation
    classification, and budget accounting over this subnetwork are
    *identical* to the full network's (they are functions of the kept
    signals only), so a pool worker can answer from the cone alone
    instead of encoding the whole design.

    Returns the subnetwork and the kept primary inputs' positions in the
    full input list (for slicing pattern matrices and re-expanding
    counterexample vectors).
    """
    tfo = set(network.fanout_cone(name))
    keep = network.fanin_support(tfo)
    pi_positions = [
        idx for idx, pi in enumerate(network.primary_inputs) if pi in keep
    ]
    sub = LogicNetwork(
        [network.primary_inputs[idx] for idx in pi_positions]
    )
    for node_name in network.topological_order():
        if node_name in keep:
            node = network.nodes[node_name]
            sub.add_node(node_name, list(node.fanins), node.cover)
    for out_name, signal in network.outputs.items():
        if signal in tfo:
            sub.set_output(out_name, signal)
    return sub, pi_positions


def _confirm_node_task(payload: _GroupPayload, name: str):
    """Pool task: one node's flexibility against the group snapshot.

    Builds a cone-restricted oracle — encoding cost proportional to the
    node's support, not the design — and returns
    ``(name, phases-or-None, counterexample rows)`` as raw data,
    reassembled into specs parent-side.  Counterexamples are expanded
    back to full-width PI vectors (unkept inputs read false, matching
    the solver's default for unconstrained variables).
    """
    network = payload.network
    sub, pi_positions = _support_subnetwork(network, name)
    oracle = CompleteFlexibilityOracle(
        sub,
        vectors=payload.vectors[:, pi_positions],
        base_vectors=payload.base_vectors,
        query_budget=payload.query_budget,
        conflict_budget=payload.conflict_budget,
        batch_size=payload.batch_size,
        recycle_counterexamples=payload.recycle_counterexamples,
    )
    spec = oracle.node_flexibility(name)
    rows = []
    for row in oracle.drain_counterexamples():
        full = np.zeros(len(network.primary_inputs), dtype=bool)
        full[pi_positions] = row
        rows.append(full.tolist())
    return (name, None if spec is None else spec.phases[0], rows)


@dataclass(frozen=True)
class CompleteDcReport:
    """Result of a SAT-complete internal-DC reassignment pass.

    Attributes:
        nodes_considered: nodes examined (wide nodes excluded).
        nodes_changed: nodes whose cover was rebuilt.
        dc_entries_assigned: local DC minterms decided for reliability.
        complete_dc_minterms: DC minterms confirmed by the complete
            extractor, totalled over the examined nodes.
        window_dc_minterms: DC minterms the window-limited baseline finds
            on the same nodes (0 when no baseline simulator fits).
        dc_delta: ``complete_dc_minterms - window_dc_minterms`` (the
            flexibility the SAT stage adds over the window extractor).
        sat_fallback_nodes: nodes that exhausted their budgets and used
            the window-limited extraction instead.
        error_rate_before / error_rate_after: internal error rates
            (``nan`` when the PI space is too large to simulate).
        node_groups: independent groups the topological order split into.
        parallel_groups: groups whose confirmation ran on the pool.
        recycled_patterns: refuting models installed as simulation
            patterns.
    """

    nodes_considered: int
    nodes_changed: int
    dc_entries_assigned: int
    complete_dc_minterms: int
    window_dc_minterms: int
    dc_delta: int
    sat_fallback_nodes: int
    error_rate_before: float
    error_rate_after: float
    node_groups: int = 0
    parallel_groups: int = 0
    recycled_patterns: int = 0


def reassign_complete_dcs(
    network: LogicNetwork,
    *,
    policy: str = "cfactor",
    threshold: float = DEFAULT_THRESHOLD,
    fraction: float = 1.0,
    max_fanins: int = 10,
    simulation_vectors: int = 256,
    query_budget: int | None = 256,
    conflict_budget: int | None = 10_000,
    window_levels: int = 2,
    rng: np.random.Generator | None = None,
    jobs: int = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    reuse_encodings: bool = True,
    recycle_counterexamples: bool = True,
    progress=None,
) -> CompleteDcReport:
    """Reassign every node's *complete* internal DCs for reliability.

    The SAT-backed sibling of
    :func:`repro.synth.odc.reassign_internal_dcs` and the engine of the
    ``complete_dc`` pipeline stage: per node, simulation proposes DC
    candidates, shared-solver SAT queries confirm them exactly, the
    chosen policy assigns the confirmed flexibility, and ESPRESSO
    rebuilds the cover.

    Nodes are scheduled as contiguous independent groups of the
    topological order (:func:`plan_node_groups`): a group's flexibilities
    are confirmed against the group-start network — serially or, with
    ``jobs > 1``, fanned out across the warm worker pool — and the
    rewrites applied sequentially, so every node sees flexibilities
    consistent with all earlier decisions and the result is bit-identical
    to the strictly sequential schedule (and to the parallel one; see the
    module docstring).

    A node that exhausts *query_budget* or *conflict_budget* falls back
    to the window-limited extractor (depth *window_levels*) when the PI
    space is small enough to simulate, else it is left untouched.  The
    same window extraction also provides the per-node baseline DC count
    recorded in the report and the ``complete_dc.*`` counters.

    Primary outputs are verified unchanged after every rewrite (packed
    compare when the PI space is enumerable) and once more at the end
    with a SAT miter against a pristine copy.

    Args:
        network: network to rewrite (mutated).
        policy: any of the evaluation's four assignment policies —
            ``"cfactor"`` (Fig. 7), ``"ranking"`` (Fig. 3),
            ``"complete"`` (assign every confirmed DC), or
            ``"conventional"`` (assign none; ESPRESSO exploits the
            confirmed flexibility freely).
        threshold: LC^f threshold for the cfactor policy.
        fraction: fraction of the ranked list for the ranking policy.
        max_fanins: skip (with ``complete_dc.wide_nodes_skipped``) nodes
            with more fanins than this.
        simulation_vectors: random vectors for candidate proposal.
        query_budget: max SAT queries per node (``None`` = unlimited).
        conflict_budget: per-solve conflict cap (``None`` = unlimited).
        window_levels: fanout-window depth of the fallback extractor.
        rng: random generator for the simulation phase.
        jobs: worker processes for group confirmation (``1`` = serial).
        batch_size: candidates per one-hot SAT batch (``1`` = unbatched).
        reuse_encodings: keep the CNF across rewrites (versioned cones).
        recycle_counterexamples: feed refuting models back into the
            proposal simulation at group boundaries.
        progress: optional ``(done, total)`` callback over considered
            nodes.

    Raises:
        ValueError: on unknown policies, or if a rewrite changes the
            primary outputs (which would indicate an ODC or solver bug).
    """
    if policy not in ("conventional", "ranking", "cfactor", "complete"):
        raise ValueError(f"unknown policy {policy!r}")
    from ..perf.pool import get_pool, pool_enabled

    full_sim: IncrementalNetworkSim | None = None
    reference = None
    pristine = None
    if len(network.primary_inputs) <= _FULL_SIM_MAX_PIS:
        full_sim = IncrementalNetworkSim(network)
        reference = full_sim.output_words().copy()
    else:
        pristine = copy.deepcopy(network)
    before = (
        internal_error_rate(network, sim=full_sim)
        if full_sim is not None
        else float("nan")
    )
    oracle = CompleteFlexibilityOracle(
        network,
        simulation_vectors=simulation_vectors,
        rng=rng,
        query_budget=query_budget,
        conflict_budget=conflict_budget,
        batch_size=batch_size,
        reuse_encodings=reuse_encodings,
        recycle_counterexamples=recycle_counterexamples,
    )
    candidates = []
    for name in network.topological_order():
        if len(network.nodes[name].fanins) > max_fanins:
            obs_metrics.counter("complete_dc.wide_nodes_skipped").inc()
            continue
        candidates.append(name)
    groups = plan_node_groups(network, candidates)
    use_pool = jobs > 1 and pool_enabled()

    considered = 0
    changed = 0
    assigned_total = 0
    complete_minterms = 0
    window_minterms = 0
    fallback_nodes = 0
    parallel_groups = 0
    recycled_total = 0
    total = len(candidates)
    done = 0
    with span(
        "flexibility.reassign_complete",
        nodes=len(network.nodes),
        policy=policy,
        jobs=jobs,
        groups=len(groups),
    ):
        for group in groups:
            # --- Confirmation phase: group members are independent, so
            # their flexibilities against the group-start network equal
            # the sequential schedule's.
            confirm_start = perf_counter()
            locals_by_name: dict[str, FunctionSpec | None] = {}
            if use_pool and len(group) > 1:
                parallel_groups += 1
                obs_metrics.counter("complete_dc.parallel_nodes").inc(
                    len(group)
                )
                payload = _GroupPayload(
                    network=network,
                    vectors=oracle.vectors,
                    base_vectors=oracle.base_vectors,
                    query_budget=query_budget,
                    conflict_budget=conflict_budget,
                    batch_size=batch_size,
                    recycle_counterexamples=recycle_counterexamples,
                )
                base_done = done
                sub_progress = None
                if progress is not None:
                    def sub_progress(d, _t, _base=base_done):
                        progress(_base + d, total)
                outcomes = get_pool(jobs).map(
                    _confirm_node_task, list(group), jobs,
                    progress=sub_progress, shared=payload,
                )
                for name, phases, rows in outcomes:
                    if phases is None:
                        locals_by_name[name] = None
                    else:
                        node = network.nodes[name]
                        locals_by_name[name] = FunctionSpec(
                            np.asarray(phases, dtype=np.uint8)[None, :],
                            name=f"{name}/local-sat",
                            input_names=tuple(node.fanins),
                            output_names=(name,),
                        )
                    if rows:
                        oracle.record_counterexamples(rows)
                done = base_done + len(group)
                if progress is not None:
                    progress(done, total)
            else:
                for name in group:
                    locals_by_name[name] = oracle.node_flexibility(name)
                    done += 1
                    if progress is not None:
                        progress(done, total)
            obs_metrics.counter("complete_dc.confirm_seconds").inc(
                perf_counter() - confirm_start
            )
            # --- Apply phase: strictly sequential, in topological order.
            for name in group:
                node = network.nodes[name]
                considered += 1
                local = locals_by_name[name]
                window_local = None
                if local is None:
                    fallback_nodes += 1
                    if full_sim is None:
                        continue  # no sound fallback without full sim
                    local = node_flexibility(
                        network, name, sim=full_sim,
                        window_levels=window_levels,
                    )
                    window_local = local  # fallback IS the window answer
                local_dcs = int(np.count_nonzero(local.phases == DC))
                complete_minterms += local_dcs
                if full_sim is not None:
                    if window_local is None:
                        window_local = node_flexibility(
                            network, name, sim=full_sim,
                            window_levels=window_levels,
                        )
                    window_minterms += int(
                        np.count_nonzero(window_local.phases == DC)
                    )
                if not local_dcs:
                    continue
                if policy == "cfactor":
                    assignment = cfactor_assignment(local, threshold)
                elif policy == "ranking":
                    assignment = ranking_assignment(local, fraction)
                elif policy == "complete":
                    assignment = complete_assignment(local)
                else:  # conventional: leave the DCs to ESPRESSO
                    assignment = Assignment()
                assigned = (
                    assignment.apply(local) if len(assignment) else local
                )
                on_cover = Cover.from_minterms(
                    len(node.fanins), assigned.on_set(0)
                )
                dc_cover = Cover.from_minterms(
                    len(node.fanins), assigned.dc_set(0)
                )
                node.cover = espresso(on_cover, dc_cover)
                changed += 1
                assigned_total += len(assignment)
                oracle.notify_rewrite(name)
                if full_sim is not None:
                    full_sim.recompute(name)
                    if not bool(
                        np.array_equal(full_sim.output_words(), reference)
                    ):
                        raise ValueError(
                            f"rewriting node {name!r} changed the primary "
                            "outputs"
                        )
            # --- Recycling boundary: counterexamples become simulation
            # patterns for every later group, in both execution modes.
            recycled_total += oracle.flush_recycled()
        # With a full-space simulator every rewrite was already verified
        # by exhaustive packed compare — strictly stronger than a miter.
        # The SAT miter is the safety net for networks too wide for it.
        if pristine is not None and not networks_equivalent(pristine, network):
            raise ValueError(
                "complete-DC reassignment changed the primary outputs "
                "(SAT miter check)"
            )
        after = (
            internal_error_rate(network, sim=full_sim)
            if full_sim is not None
            else float("nan")
        )
    delta = complete_minterms - window_minterms
    obs_metrics.counter("complete_dc.nodes").inc(considered)
    obs_metrics.counter("complete_dc.nodes_changed").inc(changed)
    obs_metrics.counter("complete_dc.dc_minterms").inc(complete_minterms)
    obs_metrics.counter("complete_dc.window_dc_minterms").inc(window_minterms)
    obs_metrics.counter("complete_dc.dc_delta").inc(delta)
    obs_metrics.counter("complete_dc.fallback_nodes").inc(fallback_nodes)
    obs_metrics.counter("complete_dc.groups").inc(len(groups))
    obs_metrics.counter("complete_dc.parallel_groups").inc(parallel_groups)
    obs_metrics.counter("complete_dc.recycled_patterns").inc(recycled_total)
    return CompleteDcReport(
        nodes_considered=considered,
        nodes_changed=changed,
        dc_entries_assigned=assigned_total,
        complete_dc_minterms=complete_minterms,
        window_dc_minterms=window_minterms,
        dc_delta=delta,
        sat_fallback_nodes=fallback_nodes,
        error_rate_before=before,
        error_rate_after=after,
        node_groups=len(groups),
        parallel_groups=parallel_groups,
        recycled_patterns=recycled_total,
    )
