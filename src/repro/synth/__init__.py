"""Multi-level synthesis, mapping, timing and power — the EDA substrate.

This subpackage stands in for the commercial tools in the paper's flow
(Synopsys Design Compiler for synthesis/mapping/reporting, ABC for
cross-validation): Boolean networks, algebraic optimisation, a generic
70 nm cell library, a tree-covering mapper, static timing, exact-activity
power analysis, an AIG optimiser, and internal-DC (ODC) extraction.
"""

from .compile_ import SynthesisResult, compile_network, compile_spec
from .factor import And, Expr, Lit, Or, expr_literals, good_factor
from .flexibility import (
    CompleteDcReport,
    CompleteFlexibilityOracle,
    node_flexibility_sat,
    reassign_complete_dcs,
)
from .kernels import algebraic_divide, cover_to_cubes, cubes_to_cover, kernels
from .library import Cell, Library, generic_70nm_library
from .mapping import map_graph
from .netlist import GateInstance, MappedNetlist
from .network import LogicNetwork, LogicNode
from .optimize import extract_cubes, extract_kernels, optimize_network
from .power import PowerReport, power_analysis
from .renode import enumerate_cuts, renode
from .subject import SubjectGraph, build_subject_graph
from .timing import TimingReport, static_timing, upsize_critical
from .verilog import netlist_to_verilog, write_verilog

__all__ = [
    "SynthesisResult",
    "compile_network",
    "compile_spec",
    "And",
    "Expr",
    "Lit",
    "Or",
    "expr_literals",
    "good_factor",
    "node_flexibility_sat",
    "CompleteDcReport",
    "CompleteFlexibilityOracle",
    "reassign_complete_dcs",
    "algebraic_divide",
    "cover_to_cubes",
    "cubes_to_cover",
    "kernels",
    "Cell",
    "Library",
    "generic_70nm_library",
    "map_graph",
    "GateInstance",
    "MappedNetlist",
    "LogicNetwork",
    "LogicNode",
    "extract_cubes",
    "extract_kernels",
    "optimize_network",
    "PowerReport",
    "power_analysis",
    "enumerate_cuts",
    "renode",
    "SubjectGraph",
    "build_subject_graph",
    "TimingReport",
    "static_timing",
    "upsize_critical",
    "netlist_to_verilog",
    "write_verilog",
]
