"""Mapped gate-level netlists.

A :class:`MappedNetlist` is the output of technology mapping: a list of
cell instances in topological order over named signals, plus constant
signals and output bindings.  It knows how to evaluate itself exhaustively
over the primary-input space, which powers both the equivalence self-checks
and the exact switching-activity power analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.spec import FunctionSpec
from .library import Cell, Library

__all__ = ["GateInstance", "MappedNetlist"]


@dataclass
class GateInstance:
    """One placed cell: ``output = cell(inputs...)`` (pin order = cell.pins)."""

    cell: Cell
    output: str
    inputs: list[str]

    def __post_init__(self) -> None:
        if len(self.inputs) != self.cell.num_pins:
            raise ValueError(
                f"{self.cell.name} instance {self.output!r}: "
                f"{len(self.inputs)} nets for {self.cell.num_pins} pins"
            )


@dataclass
class MappedNetlist:
    """A technology-mapped combinational netlist.

    Attributes:
        library: the library the cells come from.
        primary_inputs: PI signal names.
        gates: instances in topological (fanin-first) order.
        outputs: map output name -> driving signal (a gate output, a PI, or
            a constant signal).
        constants: constant-valued signals (for outputs tied high/low).
    """

    library: Library
    primary_inputs: list[str]
    gates: list[GateInstance] = field(default_factory=list)
    outputs: dict[str, str] = field(default_factory=dict)
    constants: dict[str, bool] = field(default_factory=dict)

    # ---------------------------------------------------------------- metrics

    @property
    def area(self) -> float:
        """Total cell area."""
        return sum(gate.cell.area for gate in self.gates)

    @property
    def num_gates(self) -> int:
        """Cell instance count (the paper's "Gates" column)."""
        return len(self.gates)

    def leakage(self) -> float:
        """Total static leakage."""
        return sum(gate.cell.leakage for gate in self.gates)

    # -------------------------------------------------------------- structure

    def driver_of(self) -> dict[str, GateInstance]:
        """Map from signal name to the gate driving it."""
        return {gate.output: gate for gate in self.gates}

    def readers_of(self) -> dict[str, list[GateInstance]]:
        """Map from signal name to the gates reading it."""
        readers: dict[str, list[GateInstance]] = {}
        for gate in self.gates:
            for signal in gate.inputs:
                readers.setdefault(signal, []).append(gate)
        return readers

    def loads(self) -> dict[str, float]:
        """Capacitive load on every signal (pins + wire + PO pins)."""
        lib = self.library
        load: dict[str, float] = {}
        for name in self.primary_inputs:
            load[name] = 0.0
        for name in self.constants:
            load[name] = 0.0
        for gate in self.gates:
            load[gate.output] = 0.0
        for gate in self.gates:
            for signal in gate.inputs:
                load[signal] = load.get(signal, 0.0) + gate.cell.pin_cap + lib.wire_cap
        for signal in self.outputs.values():
            load[signal] = load.get(signal, 0.0) + lib.output_cap
        return load

    # -------------------------------------------------------------- evaluation

    def evaluate(self) -> dict[str, np.ndarray]:
        """Boolean arrays of every signal over the full PI space.

        Runs on the packed bit-parallel engine (:mod:`repro.sim`) and
        unpacks at the boundary; bit-identical to
        :meth:`evaluate_reference`.
        """
        from ..sim import engine as sim_engine
        from ..sim import packed as sim_packed

        size = 1 << len(self.primary_inputs)
        packed = sim_engine.netlist_values(self)
        return {
            name: sim_packed.unpack_bool(words, size)
            for name, words in packed.items()
        }

    def evaluate_reference(self) -> dict[str, np.ndarray]:
        """Byte-per-vector reference implementation of :meth:`evaluate`
        (the packed engine's test oracle)."""
        size = 1 << len(self.primary_inputs)
        idx = np.arange(size, dtype=np.int64)
        values: dict[str, np.ndarray] = {}
        for position, name in enumerate(self.primary_inputs):
            values[name] = ((idx >> position) & 1).astype(bool)
        for name, constant in self.constants.items():
            values[name] = np.full(size, constant, dtype=bool)
        for gate in self.gates:
            pins = [values[signal] for signal in gate.inputs]
            values[gate.output] = gate.cell.evaluate(pins)
        return values

    def to_spec(self, *, name: str = "netlist") -> FunctionSpec:
        """The function implemented, as a fully specified spec."""
        values = self.evaluate()
        table = np.vstack([values[signal] for signal in self.outputs.values()])
        return FunctionSpec.from_truth_table(
            table,
            name=name,
            input_names=tuple(self.primary_inputs),
            output_names=tuple(self.outputs.keys()),
        )

    def implements(self, spec: FunctionSpec) -> bool:
        """True when the netlist matches *spec* on its care set."""
        return spec.equivalent_within_dc(self.to_spec())

    def cell_histogram(self) -> dict[str, int]:
        """Instance count per cell name."""
        histogram: dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell.name] = histogram.get(gate.cell.name, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MappedNetlist({len(self.primary_inputs)} PIs, {self.num_gates} gates, "
            f"area {self.area:.1f})"
        )
