"""Re-noding: repartitioning a network into k-feasible nodes.

Sec. 4 of the paper suggests decomposing large circuits "via, for example,
the 'renode' command in ABC" before extracting and reassigning internal
DCs: coarser nodes expose more flexibility per node and drastically shrink
the problem handed to the assignment algorithms.

This module implements the same operation: the network is lowered to its
subject graph (INV/NAND2), priority k-feasible cuts are enumerated, and a
depth-oriented cut cover turns every selected cut into one SOP node whose
local function is computed exactly.  The result is a
:class:`~repro.synth.network.LogicNetwork` of at-most-*k*-input nodes
implementing the identical function — ready for
:func:`repro.synth.odc.reassign_internal_dcs`.
"""

from __future__ import annotations

import numpy as np

from ..espresso.cube import Cover
from ..espresso.minimize import espresso
from .network import LogicNetwork
from .subject import SubjectGraph, build_subject_graph

__all__ = ["enumerate_cuts", "renode"]

_MAX_CUTS_PER_NODE = 8
"""Priority-cut bound: keep only this many cuts per vertex."""


def enumerate_cuts(
    graph: SubjectGraph, k: int
) -> dict[int, list[tuple[frozenset[int], int]]]:
    """Priority k-feasible cuts (with cone volumes) per subject vertex.

    Every vertex gets its trivial cut ``{vertex}``; internal vertices
    additionally merge their fanins' cuts, keeping at most
    ``_MAX_CUTS_PER_NODE`` candidates per vertex, preferring the deepest
    (largest approximate cone volume) — renode wants coarse nodes, unlike
    LUT mapping's smallest-first priority.

    Args:
        graph: subject graph.
        k: maximum cut width (node fanin bound), ``k >= 2``.

    Raises:
        ValueError: for ``k < 2``.
    """
    if k < 2:
        raise ValueError(f"cut width k must be >= 2, got {k}")
    # Per vertex: list of (cut, approximate cone volume).
    cuts: dict[int, list[tuple[frozenset[int], int]]] = {}
    for ref, node in enumerate(graph.nodes):
        trivial = (frozenset({ref}), 0)
        if node.kind in ("pi", "const"):
            cuts[ref] = [trivial]
            continue
        merged: dict[frozenset[int], int] = {}
        if node.kind == "inv":
            for cut, volume in cuts[node.fanins[0]]:
                merged[cut] = max(merged.get(cut, 0), volume + 1)
        else:
            for cut_a, vol_a in cuts[node.fanins[0]]:
                for cut_b, vol_b in cuts[node.fanins[1]]:
                    union = cut_a | cut_b
                    if len(union) <= k:
                        merged[union] = max(merged.get(union, 0), vol_a + vol_b + 1)
        # Drop dominated cuts (supersets of another cut), then keep the
        # deepest (largest-cone) candidates: renode wants coarse nodes.
        kept: list[frozenset[int]] = []
        for cut in sorted(merged, key=len):
            if not any(other < cut for other in kept):
                kept.append(cut)
        kept.sort(key=lambda cut: merged[cut], reverse=True)
        kept = kept[: _MAX_CUTS_PER_NODE - 1]
        cuts[ref] = [(cut, merged[cut]) for cut in kept] + [trivial]
    return cuts


def _cut_function(
    graph: SubjectGraph, root: int, leaves: list[int]
) -> np.ndarray:
    """Exact truth table of *root* over the cut *leaves* (leaf 0 = bit 0)."""
    size = 1 << len(leaves)
    idx = np.arange(size)
    values: dict[int, np.ndarray] = {
        leaf: ((idx >> position) & 1).astype(bool)
        for position, leaf in enumerate(leaves)
    }

    def evaluate(ref: int) -> np.ndarray:
        cached = values.get(ref)
        if cached is not None:
            return cached
        node = graph.nodes[ref]
        if node.kind == "const":
            result = np.full(size, node.label == "1", dtype=bool)
        elif node.kind == "inv":
            result = ~evaluate(node.fanins[0])
        elif node.kind == "nand":
            result = ~(evaluate(node.fanins[0]) & evaluate(node.fanins[1]))
        else:  # a PI that is not a leaf would make the cut infeasible
            raise ValueError(f"vertex {ref} is not covered by the cut")
        values[ref] = result
        return result

    return evaluate(root)


def renode(network: LogicNetwork, k: int = 6) -> LogicNetwork:
    """Repartition *network* into a network of <= *k*-input SOP nodes.

    The subject graph is covered bottom-up with the widest available cut
    at every mapping frontier (greedy depth-style cover), and each chosen
    cut's exact local function is re-minimised with ESPRESSO to give the
    node a clean SOP.

    Args:
        network: source network (unchanged).
        k: node fanin bound.

    Returns:
        A new, functionally identical network of k-feasible nodes.
    """
    graph = build_subject_graph(network)
    cuts = enumerate_cuts(graph, k)
    fanout = graph.fanout_counts()

    result = LogicNetwork(list(network.primary_inputs))
    signal_of: dict[int, str] = {}
    for ref, node in enumerate(graph.nodes):
        if node.kind == "pi":
            signal_of[ref] = node.label

    del fanout  # cuts may cross fanout; shared cones are duplicated, as
    # in ABC's renode — the point is coarse nodes, not minimal area.

    def cone_volume(ref: int, cut: frozenset[int]) -> int:
        """Subject vertices strictly inside the (ref, cut) cone."""
        seen: set[int] = set()
        stack = [ref]
        while stack:
            current = stack.pop()
            if current in cut or current in seen:
                continue
            seen.add(current)
            stack.extend(graph.nodes[current].fanins)
        return len(seen)

    def materialise(ref: int) -> str:
        cached = signal_of.get(ref)
        if cached is not None:
            return cached
        node = graph.nodes[ref]
        if node.kind == "const":
            name = result.fresh_name("const")
            cover = (
                Cover.universe(1) if node.label == "1" else Cover.empty(1)
            )
            anchor = network.primary_inputs[0]
            result.add_node(name, [anchor], cover)
            signal_of[ref] = name
            return name
        # Choose the cut swallowing the most logic; its leaves become the
        # node's fanins and are materialised recursively.
        candidates = [cut for cut, _ in cuts[ref] if cut != frozenset({ref})]
        if not candidates:
            candidates = [frozenset(node.fanins)]
        chosen = max(candidates, key=lambda cut: cone_volume(ref, cut))
        leaves = sorted(chosen)
        leaf_signals = [materialise(leaf) for leaf in leaves]
        table = _cut_function(graph, ref, leaves)
        minterms = np.flatnonzero(table)
        if minterms.size == 0:
            cover = Cover.empty(len(leaves))
        elif minterms.size == table.size:
            cover = Cover.universe(len(leaves))
        else:
            cover = espresso(Cover.from_minterms(len(leaves), minterms))
        name = result.fresh_name("r")
        result.add_node(name, leaf_signals, cover)
        signal_of[ref] = name
        return name

    for out_name, ref in graph.outputs.items():
        result.set_output(out_name, materialise(ref))
    result.sweep_dangling()
    return result
