"""Algebraic factoring of SOP expressions into factored-form trees.

``good_factor`` implements the classic QUICK_FACTOR/GOOD_FACTOR recursion:
pick a divisor (the best kernel, falling back to the most frequent
literal), divide, and recurse on quotient, divisor and remainder.  The
resulting :class:`Expr` trees feed the subject-graph construction of the
technology mapper, and their literal counts are the technology-independent
area estimate used during multi-level optimisation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .kernels import (
    CubeSet,
    algebraic_divide,
    common_cube,
    cube_set_key,
    cube_set_literals,
    kernels,
)

__all__ = ["Expr", "Lit", "And", "Or", "good_factor", "expr_literals"]


@dataclass(frozen=True)
class Expr:
    """Base class of factored-form nodes."""


@dataclass(frozen=True)
class Lit(Expr):
    """A literal leaf: *signal* with *polarity* (True = uncomplemented)."""

    signal: str
    polarity: bool

    def __str__(self) -> str:
        return self.signal if self.polarity else f"{self.signal}'"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of sub-expressions."""

    children: tuple[Expr, ...]

    def __str__(self) -> str:
        parts = [
            f"({child})" if isinstance(child, Or) else str(child)
            for child in self.children
        ]
        return " ".join(parts)


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of sub-expressions."""

    children: tuple[Expr, ...]

    def __str__(self) -> str:
        return " + ".join(str(child) for child in self.children)


def expr_literals(expr: Expr) -> int:
    """Number of literal leaves in a factored form."""
    if isinstance(expr, Lit):
        return 1
    assert isinstance(expr, (And, Or))
    return sum(expr_literals(child) for child in expr.children)


def _flatten(kind: type, children: list[Expr]) -> Expr:
    merged: list[Expr] = []
    for child in children:
        if isinstance(child, kind):
            merged.extend(child.children)  # type: ignore[attr-defined]
        else:
            merged.append(child)
    if len(merged) == 1:
        return merged[0]
    return kind(tuple(merged))  # type: ignore[call-arg]


def _cube_expr(cube: frozenset) -> Expr:
    literals = [Lit(name, polarity) for name, polarity in sorted(cube)]
    if not literals:
        raise ValueError("cannot factor an expression containing the empty cube")
    if len(literals) == 1:
        return literals[0]
    return And(tuple(literals))


def _best_divisor(expr: CubeSet) -> CubeSet | None:
    """The kernel maximising (cubes - 1) * (literals - 1), or None."""
    candidates = kernels(expr, include_self=False)
    best: CubeSet | None = None
    best_value = 0
    # Canonical iteration order: score ties must not fall back to set
    # iteration order, or factoring depends on PYTHONHASHSEED.
    for kernel in sorted(candidates, key=cube_set_key):
        value = (len(kernel) - 1) * (cube_set_literals(kernel) - 1)
        if value > best_value:
            best, best_value = kernel, value
    return best


def good_factor(expr: CubeSet) -> Expr:
    """Factor an algebraic expression into a (near-)minimal-literal tree.

    The empty expression (constant 0) and the expression containing the
    empty cube (constant 1) cannot be represented as factored forms and
    are rejected — callers handle constants separately.

    Raises:
        ValueError: on constant expressions.
    """
    if not expr:
        raise ValueError("cannot factor the constant-0 expression")
    if frozenset() in expr:
        raise ValueError("cannot factor an expression absorbed to constant 1")
    if len(expr) == 1:
        return _cube_expr(next(iter(expr)))

    shared = common_cube(expr)
    if shared:
        rest = frozenset(cube - shared for cube in expr)
        if frozenset() in rest:
            # f = shared * (1 + ...) -> algebraically just handle as SOP of
            # the original cubes (rare; caused by single-cube absorption).
            return _flatten(Or, [_cube_expr(cube) for cube in sorted(expr, key=sorted)])
        return _flatten(And, [_cube_expr(shared), good_factor(rest)])

    divisor = _best_divisor(expr)
    if divisor is None:
        # No kernel with value: fall back to the most frequent literal.
        counts = Counter(literal for cube in expr for literal in cube)
        literal, count = max(counts.items(), key=lambda item: (item[1], item[0]))
        if count < 2:
            return _flatten(Or, [_cube_expr(cube) for cube in sorted(expr, key=sorted)])
        divisor = frozenset({frozenset({literal})})

    quotient, remainder = algebraic_divide(expr, divisor)
    if not quotient or frozenset() in quotient or frozenset() in remainder:
        return _flatten(Or, [_cube_expr(cube) for cube in sorted(expr, key=sorted)])
    product = _flatten(And, [good_factor(divisor), good_factor(quotient)])
    if not remainder:
        return product
    return _flatten(Or, [product, good_factor(remainder)])
