"""Algebraic division and kernel extraction (MIS-style).

The algebraic model treats a literal (signal, polarity) as an opaque symbol:
an expression is a set of cubes, a cube a set of literals, and
multiplication is cube union without Boolean simplification.  Kernels — the
cube-free quotients of an expression by cube divisors — are the classic
source of good multi-level divisors; :func:`kernels` enumerates them and
:func:`algebraic_divide` performs weak division.
"""

from __future__ import annotations

from collections import Counter

from ..espresso.cube import FREE, V0, V1, Cover

__all__ = [
    "Literal",
    "CubeSet",
    "cover_to_cubes",
    "cubes_to_cover",
    "algebraic_divide",
    "common_cube",
    "make_cube_free",
    "kernels",
    "cube_key",
    "cube_set_key",
    "cube_set_literals",
]

Literal = tuple[str, bool]
"""An algebraic literal: (signal name, polarity) — True for uncomplemented."""

CubeSet = frozenset  # of frozenset[Literal]
"""An algebraic expression: a frozenset of cubes (frozensets of literals)."""


def cover_to_cubes(cover: Cover, fanins: list[str]) -> CubeSet:
    """Convert a positional cover over *fanins* into an algebraic cube set."""
    cubes = set()
    for row in cover.cubes:
        literals = frozenset(
            (fanins[j], bool(row[j] == V1))
            for j in range(cover.num_inputs)
            if row[j] != FREE
        )
        cubes.add(literals)
    return frozenset(cubes)


def cubes_to_cover(cubes: CubeSet, fanins: list[str]) -> Cover:
    """Convert an algebraic cube set back to a positional cover.

    Raises:
        ValueError: if a cube mentions a signal not in *fanins*, or binds
            both polarities of a signal (an algebraically null cube).
    """
    position = {name: j for j, name in enumerate(fanins)}
    import numpy as np

    rows = np.full((len(cubes), len(fanins)), FREE, dtype=np.uint8)
    for i, cube in enumerate(sorted(cubes, key=sorted)):
        for name, polarity in cube:
            if name not in position:
                raise ValueError(f"cube literal {name!r} not among fanins")
            j = position[name]
            code = V1 if polarity else V0
            if rows[i, j] != FREE and rows[i, j] != code:
                raise ValueError(f"cube binds both polarities of {name!r}")
            rows[i, j] = code
    return Cover(rows, len(fanins))


def cube_set_literals(cubes: CubeSet) -> int:
    """Total literal count of the expression."""
    return sum(len(cube) for cube in cubes)


def cube_key(cube: frozenset) -> tuple:
    """A canonical sort key for one cube."""
    return tuple(sorted(cube))


def cube_set_key(cubes: CubeSet) -> tuple:
    """A canonical sort key for a cube set.

    Divisor candidates live in hash-ordered sets; greedy selection loops
    must break score ties with this key instead of set iteration order,
    so the chosen divisors — and every synthesised netlist downstream —
    are independent of ``PYTHONHASHSEED``.  Checkpoint resume and the
    parallel sweep executor rely on this for bit-identical results
    across processes.
    """
    return tuple(sorted(cube_key(cube) for cube in cubes))


def algebraic_divide(expr: CubeSet, divisor: CubeSet) -> tuple[CubeSet, CubeSet]:
    """Weak division: ``expr = quotient * divisor + remainder``.

    Returns:
        ``(quotient, remainder)`` with an empty quotient when the divisor
        does not divide the expression.
    """
    if not divisor:
        return frozenset(), expr
    quotient: set[frozenset] | None = None
    for d_cube in divisor:
        partials = {cube - d_cube for cube in expr if d_cube <= cube}
        if quotient is None:
            quotient = partials
        else:
            quotient &= partials
        if not quotient:
            return frozenset(), expr
    assert quotient is not None
    product = {q_cube | d_cube for q_cube in quotient for d_cube in divisor}
    remainder = frozenset(cube for cube in expr if cube not in product)
    return frozenset(quotient), remainder


def common_cube(cubes: CubeSet) -> frozenset:
    """The largest cube dividing every cube of the expression."""
    iterator = iter(cubes)
    try:
        result = set(next(iterator))
    except StopIteration:
        return frozenset()
    for cube in iterator:
        result &= cube
    return frozenset(result)


def make_cube_free(cubes: CubeSet) -> CubeSet:
    """Divide out the common cube, making the expression cube-free."""
    shared = common_cube(cubes)
    if not shared:
        return cubes
    return frozenset(cube - shared for cube in cubes)


def kernels(
    expr: CubeSet, *, include_self: bool = True, max_kernels: int = 200
) -> set[CubeSet]:
    """Kernels of the expression (cube-free quotients by cube divisors).

    Args:
        expr: the algebraic expression.
        include_self: also report the expression itself when it is
            cube-free with more than one cube (the top-level kernel).
        max_kernels: enumeration cap — kernel counts can grow explosively
            on large SOPs, and the greedy extractor only needs a rich
            sample, not the complete set.

    Returns:
        A set of cube sets, each a kernel with at least two cubes.
    """
    found: set[CubeSet] = set()

    def recurse(current: CubeSet, minimum_literal: tuple) -> None:
        if len(found) >= max_kernels:
            return
        counts = Counter(literal for cube in current for literal in cube)
        for literal, count in sorted(counts.items()):
            if count < 2 or literal < minimum_literal:
                continue
            quotient = frozenset(cube - {literal} for cube in current if literal in cube)
            kernel = make_cube_free(quotient)
            # A kernel containing the empty cube stems from single-cube
            # absorption (f = a + ab); it is not a usable divisor.
            if len(kernel) >= 2 and frozenset() not in kernel and kernel not in found:
                found.add(kernel)
                recurse(kernel, literal)
            if len(found) >= max_kernels:
                return

    recurse(expr, ("", False))
    free = make_cube_free(expr)
    if include_self and len(free) >= 2:
        found.add(free)
    return found
