"""Static timing analysis and critical-path gate sizing.

Delay model: a gate's output arrival is the worst input-pin arrival plus
the cell's intrinsic delay plus ``resistance * load`` on its output net;
primary inputs are driven through the library's ``input_drive`` resistance.
``upsize_critical`` is the "compile for delay" post-pass: it walks the
critical path swapping cells for higher-drive variants while that improves
the clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from .netlist import GateInstance, MappedNetlist

__all__ = ["TimingReport", "static_timing", "upsize_critical"]


@dataclass(frozen=True)
class TimingReport:
    """Arrival times and the critical path.

    Attributes:
        delay: worst primary-output arrival time.
        arrivals: arrival time per signal.
        critical_path: signal names from a PI to the worst PO.
    """

    delay: float
    arrivals: dict[str, float]
    critical_path: tuple[str, ...]


def static_timing(netlist: MappedNetlist) -> TimingReport:
    """Compute arrival times over the netlist (topological, load-aware)."""
    library = netlist.library
    loads = netlist.loads()
    arrivals: dict[str, float] = {}
    worst_fanin: dict[str, str] = {}
    for name in netlist.primary_inputs:
        arrivals[name] = library.input_drive * loads.get(name, 0.0)
    for name in netlist.constants:
        arrivals[name] = 0.0
    for gate in netlist.gates:
        pin_arrival = 0.0
        pin_signal = ""
        for signal in gate.inputs:
            if arrivals[signal] >= pin_arrival:
                pin_arrival = arrivals[signal]
                pin_signal = signal
        arrivals[gate.output] = (
            pin_arrival + gate.cell.intrinsic + gate.cell.resistance * loads[gate.output]
        )
        worst_fanin[gate.output] = pin_signal

    if netlist.outputs:
        worst_signal = max(netlist.outputs.values(), key=lambda s: arrivals[s])
        delay = arrivals[worst_signal]
    else:
        worst_signal, delay = "", 0.0

    path: list[str] = []
    cursor = worst_signal
    while cursor:
        path.append(cursor)
        cursor = worst_fanin.get(cursor, "")
    return TimingReport(delay, arrivals, tuple(reversed(path)))


def upsize_critical(netlist: MappedNetlist, *, max_rounds: int = 10) -> MappedNetlist:
    """Greedy critical-path gate sizing (in place; returns the netlist).

    Each round walks the current critical path and tries every drive
    variant of every gate on it, keeping the single swap that improves the
    worst delay the most.  Stops when no swap helps or after *max_rounds*.
    """
    library = netlist.library
    drivers = netlist.driver_of()
    for _ in range(max_rounds):
        report = static_timing(netlist)
        best_delay = report.delay
        best_swap: tuple[GateInstance, object] | None = None
        for signal in report.critical_path:
            gate = drivers.get(signal)
            if gate is None:
                continue
            original = gate.cell
            for variant in library.variants_of(original):
                if variant.name == original.name:
                    continue
                gate.cell = variant
                trial = static_timing(netlist).delay
                if trial < best_delay - 1e-12:
                    best_delay = trial
                    best_swap = (gate, variant)
                gate.cell = original
        if best_swap is None:
            return netlist
        gate, variant = best_swap
        gate.cell = variant  # type: ignore[assignment]
    return netlist
